// Quickstart: plan the test of the paper's p93791m mixed-signal SOC.
//
// Run with:
//
//	go run ./examples/quickstart
//
// It loads the embedded benchmark (the ITC'02 p93791 digital SOC plus
// five analog cores from a commercial baseband chip), runs the
// Cost_Optimizer heuristic at TAM width 32 with balanced cost weights,
// and prints the chosen wrapper-sharing configuration and schedule
// summary.
package main

import (
	"fmt"
	"log"

	"mixsoc"
)

func main() {
	log.SetFlags(0)

	// The paper's experimental SOC: 32 digital cores + analog cores A-E.
	design := mixsoc.P93791M()
	fmt.Printf("design %s: %d digital cores, %d analog cores\n",
		design.Name, len(design.Digital.Cores()), len(design.Analog))

	// Plan at TAM width 32 with equal weight on test time and area.
	res, err := mixsoc.Plan(design, 32, mixsoc.EqualWeights)
	if err != nil {
		log.Fatal(err)
	}

	names := design.AnalogNames()
	fmt.Printf("\nbest wrapper sharing:  %s\n", res.Best.Label(names))
	fmt.Printf("test time:             %d cycles (%.1f%% of worst case)\n",
		res.Best.TestTime, res.Best.CT)
	fmt.Printf("area overhead cost:    %.1f (no sharing = 100)\n", res.Best.CA)
	fmt.Printf("total cost:            %.2f\n", res.Best.Cost)
	fmt.Printf("TAM evaluations:       %d of %d candidates (%.1f%% saved by the heuristic)\n",
		res.NEval, res.Candidates, res.ReductionPercent())

	// Materialize and sanity-check the schedule for the winning plan.
	schedule, err := mixsoc.ScheduleFor(design, res.Best.Partition, 32)
	if err != nil {
		log.Fatal(err)
	}
	if err := schedule.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nschedule: %d tests placed, makespan %d cycles, %.1f%% TAM utilization\n",
		len(schedule.Placements), schedule.Makespan, 100*schedule.Utilization())

	// How the shared analog wrappers serialize their cores' tests:
	for group, spans := range schedule.GroupSpans() {
		fmt.Printf("  %s busy intervals:", group)
		for _, s := range spans {
			fmt.Printf(" [%d..%d)", s[0], s[1])
		}
		fmt.Println()
	}
}
