// Command msoc-wrapsim runs the Section 5 analog-wrapper accuracy
// experiment (Figure 5): a multi-tone cut-off frequency test applied to
// a low-pass core directly and through the behavioural 8-bit analog
// test wrapper.
//
// Usage:
//
//	msoc-wrapsim [-samples 4551] [-cutoff 60000] [-order 2]
//	             [-bandwidth 240000] [-csv spectra.csv]
//
// Without flags it reproduces the paper's setup. -csv writes the three
// spectra for external plotting.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mixsoc/internal/experiments"
	"mixsoc/internal/wrapsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msoc-wrapsim: ")

	samples := flag.Int("samples", 4551, "capture length in samples")
	cutoff := flag.Float64("cutoff", 60e3, "true cut-off frequency of the core under test, Hz")
	order := flag.Int("order", 2, "low-pass order of the core under test")
	bandwidth := flag.Float64("bandwidth", 240e3, "wrapper analog path bandwidth, Hz (0 disables)")
	adcINL := flag.Float64("adcinl", 0.6, "ADC stage INL in LSB")
	dacINL := flag.Float64("dacinl", 0.6, "DAC stage INL in LSB")
	csvPath := flag.String("csv", "", "write spectra as CSV to this file")
	flag.Parse()

	e := wrapsim.PaperCutoffExperiment()
	e.Samples = *samples
	e.FilterCutoff = *cutoff
	e.FilterOrder = *order
	e.Wrapper.PathBandwidth = *bandwidth
	e.Wrapper.ADCINL = *adcINL
	e.Wrapper.DACINL = *dacINL

	res, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderFigure5(res))

	if *csvPath != "" {
		csv := experiments.Figure5CSV(res, 250e3)
		if err := os.WriteFile(*csvPath, []byte(csv), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nspectra written to %s\n", *csvPath)
	}
}
