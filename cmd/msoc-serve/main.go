// Command msoc-serve runs the mixed-signal test planner as an HTTP/JSON
// service: a long-lived planning Engine whose per-design caches are
// shared across requests, a bounded worker pool, and per-request
// deadlines with mid-sweep cancellation.
//
// Usage:
//
//	msoc-serve [-addr :8093] [-workers N] [-max-concurrent 4]
//	           [-timeout 120s] [-max-designs 8] [-drain 30s]
//	           [-worker-urls http://a:8093,http://b:8093] [-worker-file workers.txt]
//	           [-shard-timeout 60s] [-shard-retries N] [-retry-backoff 250ms]
//	           [-probe-interval 5s] [-probe-timeout 2s] [-probe-failures 3]
//	           [-readmit-backoff 15s]
//	           [-job-dir /var/lib/msoc/jobs] [-job-retention 24h]
//
// Endpoints:
//
//	POST /v1/plan              {"width":32,"wt":0.5[,"exhaustive":true][,"design":{...}]}
//	POST /v1/sweep             {"widths":[32,48,64],"wts":[0.5,0.25][,"warm_start":true]}
//	POST /v1/shard             one round-robin shard of a sweep (what coordinators send)
//	POST /v1/sweeps            submit a sweep as a durable async job; returns its ID
//	GET  /v1/sweeps/{id}        job status with per-shard progress
//	GET  /v1/sweeps/{id}/result the finished job's SweepResponse (bytes == POST /v1/sweep)
//	GET  /v1/sweeps/{id}/events NDJSON stream of shard partials, then the terminal state
//	GET  /v1/designs           live cache sessions + cache-hit metrics
//	GET  /v1/workers           fleet membership and per-worker lifecycle state
//	POST /v1/workers           add/remove workers at runtime
//	GET  /metrics              Prometheus text-format scrape surface
//	GET  /healthz              liveness probe (reports planning capacity)
//
// With -worker-urls and/or -worker-file the server runs as a
// distributed-sweep *coordinator*: POST /v1/sweep is partitioned into
// capacity-weighted round-robin shards fanned out to the fleet's
// healthy workers under per-shard deadlines with backed-off
// retry-by-reassignment, and merged into a response byte-identical to
// an in-process sweep. The fleet is live: workers are probed via
// /healthz every -probe-interval, marked suspect on the first failure,
// evicted after -probe-failures consecutive failures, re-admitted once
// probes succeed again (first re-probe after -readmit-backoff), and
// may join or leave at runtime through POST /v1/workers or by editing
// the watched -worker-file. Workers are plain msoc-serve processes;
// nothing distinguishes them except receiving /v1/shard traffic.
//
// With -job-dir, POST /v1/sweeps jobs become *durable*: every completed
// shard is checkpointed to <job-dir>/<id>/ as it lands, and a restarted
// server with the same -job-dir recovers every job — finished results
// serve verbatim, interrupted jobs re-verify their surviving
// checkpoints and re-run only the missing shards, converging to the
// same bytes an undisturbed sweep would have produced. Identical
// re-submissions return the existing job's ID (the ID is derived from
// the request content, so dedupe also survives restarts). -job-retention
// bounds how long terminal jobs are kept before garbage collection;
// 0 keeps them forever.
//
// SIGTERM/SIGINT triggers a graceful shutdown: the listener closes,
// in-flight plans and sweeps get up to -drain to finish, and the
// fleet's probe loop stops cleanly.
//
// Responses are bit-identical to direct library calls; msoc-plan -json
// prints the same bytes for the same request, which CI verifies against
// a live server — and against a coordinator whose workers are killed
// mid-sweep (the chaos-smoke job).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mixsoc/internal/core"
	"mixsoc/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msoc-serve: ")
	if err := run(os.Args[1:], nil, nil); err != nil {
		log.Fatal(err)
	}
}

// run is main without the process plumbing, so graceful shutdown is
// unit-testable: sigs, when non-nil, replaces the OS signal channel;
// ready, when non-nil, receives the bound listen address once the
// server accepts connections. It returns once the server has fully
// drained (or the listener failed).
func run(args []string, sigs <-chan os.Signal, ready chan<- string) error {
	fs := flag.NewFlagSet("msoc-serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8093", "listen address")
	workers := fs.Int("workers", 0, "total CPU budget across concurrent requests; 0 = all CPUs")
	maxConcurrent := fs.Int("max-concurrent", 4, "planning requests in flight before 503s")
	timeout := fs.Duration("timeout", 120*time.Second, "per-request planning deadline (also caps timeout_ms)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight requests after SIGTERM/SIGINT")
	maxDesigns := fs.Int("max-designs", 8, "design cache sessions kept before LRU eviction")
	workerURLs := fs.String("worker-urls", "", "comma-separated worker base URLs; non-empty runs this server as a distributed-sweep coordinator")
	workerFile := fs.String("worker-file", "", "watched file of worker base URLs, one per line (# comments); re-read every probe interval, so edits change the fleet live")
	shardTimeout := fs.Duration("shard-timeout", 60*time.Second, "coordinator per-shard-attempt deadline before the shard is reassigned")
	shardRetries := fs.Int("shard-retries", -1, "extra workers a failed shard is reassigned to; -1 = every other fleet member once")
	retryBackoff := fs.Duration("retry-backoff", 250*time.Millisecond, "base wait between a shard's attempts, doubling per retry")
	probeInterval := fs.Duration("probe-interval", 5*time.Second, "fleet health-probe period (also the worker-file poll period)")
	probeTimeout := fs.Duration("probe-timeout", 2*time.Second, "per-probe /healthz deadline")
	probeFailures := fs.Int("probe-failures", 3, "consecutive probe/shard failures before a worker is evicted (the first failure marks it suspect)")
	readmitBackoff := fs.Duration("readmit-backoff", 15*time.Second, "initial wait before an evicted worker is re-probed for re-admission, doubling per failed re-probe")
	jobDir := fs.String("job-dir", "", "directory for durable async sweep jobs (POST /v1/sweeps); empty keeps jobs in memory only")
	jobRetention := fs.Duration("job-retention", 0, "how long finished/failed jobs are kept before garbage collection; 0 = forever")
	if err := fs.Parse(args); err != nil {
		return err
	}

	urls := splitWorkerURLs(*workerURLs)
	eng := core.NewEngine(core.EngineOptions{
		MaxDesigns: *maxDesigns,
		Workers:    innerWorkers(*workers, *maxConcurrent),
	})
	srv := service.New(service.Options{
		Engine:                eng,
		Workers:               *workers,
		MaxConcurrent:         *maxConcurrent,
		RequestTimeout:        *timeout,
		WorkerURLs:            urls,
		WorkerFile:            *workerFile,
		ShardTimeout:          *shardTimeout,
		ShardAttempts:         *shardRetries + 1,
		RetryBackoff:          *retryBackoff,
		ProbeInterval:         *probeInterval,
		ProbeTimeout:          *probeTimeout,
		ProbeFailureThreshold: *probeFailures,
		ReadmitBackoff:        *readmitBackoff,
		JobDir:                *jobDir,
		JobRetention:          *jobRetention,
		Logf:                  log.Printf,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if sigs == nil {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(ch)
		sigs = ch
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	if len(urls) > 0 || *workerFile != "" {
		log.Printf("coordinating sweeps across a live fleet (urls=%d, file=%q, probe every %s, evict after %d failures, re-admit backoff %s)",
			len(urls), *workerFile, *probeInterval, *probeFailures, *readmitBackoff)
	}
	if *jobDir != "" {
		retention := "forever"
		if *jobRetention > 0 {
			retention = jobRetention.String()
		}
		log.Printf("durable jobs in %s (retention %s)", *jobDir, retention)
	}
	log.Printf("serving on %s (workers %d, max-concurrent %d, timeout %s)",
		ln.Addr(), effectiveWorkers(*workers), *maxConcurrent, *timeout)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-serveErr:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-sigs:
		log.Printf("shutting down: draining in-flight requests (deadline %s); engine %s", *drain, eng)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		// Probes and idle fleet connections stop with the server (the
		// deferred Close is idempotent; doing it before returning keeps
		// "run returned" == "nothing left running").
		srv.Close()
		return nil
	}
}

// splitWorkerURLs resolves the -worker-urls flag (comma-separated base
// URLs); the -worker-file is handled by the service itself, which
// watches it for changes.
func splitWorkerURLs(urls string) []string {
	var out []string
	for _, u := range strings.Split(urls, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// effectiveWorkers mirrors the service's worker default for the banner.
func effectiveWorkers(workers int) int {
	if workers > 0 {
		return workers
	}
	return core.DefaultWorkers()
}

// innerWorkers is each request slot's share of the CPU budget, matching
// the split service.New applies.
func innerWorkers(workers, maxConcurrent int) int {
	if maxConcurrent < 1 {
		maxConcurrent = 4
	}
	_, inner := core.SplitWorkers(effectiveWorkers(workers), maxConcurrent)
	return inner
}
