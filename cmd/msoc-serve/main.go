// Command msoc-serve runs the mixed-signal test planner as an HTTP/JSON
// service: a long-lived planning Engine whose per-design caches are
// shared across requests, a bounded worker pool, and per-request
// deadlines with mid-sweep cancellation.
//
// Usage:
//
//	msoc-serve [-addr :8093] [-workers N] [-max-concurrent 4]
//	           [-timeout 120s] [-max-designs 8]
//	           [-worker-urls http://a:8093,http://b:8093 | -worker-file workers.txt]
//	           [-shard-timeout 60s] [-shard-retries N]
//
// Endpoints:
//
//	POST /v1/plan     {"width":32,"wt":0.5[,"exhaustive":true][,"design":{...}]}
//	POST /v1/sweep    {"widths":[32,48,64],"wts":[0.5,0.25][,"warm_start":true]}
//	POST /v1/shard    one round-robin shard of a sweep (what coordinators send)
//	GET  /v1/designs  live cache sessions + cache-hit metrics
//	GET  /metrics     Prometheus text-format scrape surface
//	GET  /healthz     liveness probe
//
// With -worker-urls (or -worker-file) the server runs as a
// distributed-sweep *coordinator*: POST /v1/sweep is partitioned
// round-robin into one /v1/shard request per worker, fanned out under
// per-shard deadlines with retry-by-reassignment, and merged into a
// response byte-identical to an in-process sweep. Workers are plain
// msoc-serve processes; nothing distinguishes them except receiving
// /v1/shard traffic.
//
// Responses are bit-identical to direct library calls; msoc-plan -json
// prints the same bytes for the same request, which CI verifies against
// a live server — and against a coordinator with two workers.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mixsoc/internal/core"
	"mixsoc/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msoc-serve: ")

	addr := flag.String("addr", ":8093", "listen address")
	workers := flag.Int("workers", 0, "total CPU budget across concurrent requests; 0 = all CPUs")
	maxConcurrent := flag.Int("max-concurrent", 4, "planning requests in flight before 503s")
	timeout := flag.Duration("timeout", 120*time.Second, "per-request planning deadline (also caps timeout_ms)")
	maxDesigns := flag.Int("max-designs", 8, "design cache sessions kept before LRU eviction")
	workerURLs := flag.String("worker-urls", "", "comma-separated worker base URLs; non-empty runs this server as a distributed-sweep coordinator")
	workerFile := flag.String("worker-file", "", "file of worker base URLs, one per line (# comments); alternative to -worker-urls")
	shardTimeout := flag.Duration("shard-timeout", 60*time.Second, "coordinator per-shard-attempt deadline before the shard is reassigned")
	shardRetries := flag.Int("shard-retries", -1, "extra workers a failed shard is reassigned to; -1 = every other worker once")
	flag.Parse()

	urls, err := workerList(*workerURLs, *workerFile)
	if err != nil {
		log.Fatal(err)
	}

	eng := core.NewEngine(core.EngineOptions{
		MaxDesigns: *maxDesigns,
		Workers:    innerWorkers(*workers, *maxConcurrent),
	})
	srv := service.New(service.Options{
		Engine:         eng,
		Workers:        *workers,
		MaxConcurrent:  *maxConcurrent,
		RequestTimeout: *timeout,
		WorkerURLs:     urls,
		ShardTimeout:   *shardTimeout,
		ShardAttempts:  *shardRetries + 1,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: stop accepting, let in-flight plans finish (or
	// hit their own deadlines), then exit.
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("shutting down: %s", eng)
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	if len(urls) > 0 {
		log.Printf("coordinating sweeps across %d workers: %s (shard timeout %s)",
			len(urls), strings.Join(urls, ", "), *shardTimeout)
	}
	log.Printf("serving on %s (workers %d, max-concurrent %d, timeout %s)",
		*addr, effectiveWorkers(*workers), *maxConcurrent, *timeout)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}

// workerList resolves the coordinator's worker set from the -worker-urls
// list and/or the -worker-file static config (one base URL per line,
// blank lines and # comments ignored).
func workerList(urls, file string) ([]string, error) {
	var out []string
	for _, u := range strings.Split(urls, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			out = append(out, line)
		}
	}
	return out, nil
}

// effectiveWorkers mirrors the service's worker default for the banner.
func effectiveWorkers(workers int) int {
	if workers > 0 {
		return workers
	}
	return core.DefaultWorkers()
}

// innerWorkers is each request slot's share of the CPU budget, matching
// the split service.New applies.
func innerWorkers(workers, maxConcurrent int) int {
	if maxConcurrent < 1 {
		maxConcurrent = 4
	}
	_, inner := core.SplitWorkers(effectiveWorkers(workers), maxConcurrent)
	return inner
}
