// Command msoc-serve runs the mixed-signal test planner as an HTTP/JSON
// service: a long-lived planning Engine whose per-design caches are
// shared across requests, a bounded worker pool, and per-request
// deadlines with mid-sweep cancellation.
//
// Usage:
//
//	msoc-serve [-addr :8093] [-workers N] [-max-concurrent 4]
//	           [-timeout 120s] [-max-designs 8]
//
// Endpoints:
//
//	POST /v1/plan     {"width":32,"wt":0.5[,"exhaustive":true][,"design":{...}]}
//	POST /v1/sweep    {"widths":[32,48,64],"wts":[0.5,0.25][,"warm_start":true]}
//	GET  /v1/designs  live cache sessions + cache-hit metrics
//	GET  /healthz     liveness probe
//
// Responses are bit-identical to direct library calls; msoc-plan -json
// prints the same bytes for the same point, which CI verifies against a
// live server.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mixsoc/internal/core"
	"mixsoc/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msoc-serve: ")

	addr := flag.String("addr", ":8093", "listen address")
	workers := flag.Int("workers", 0, "total CPU budget across concurrent requests; 0 = all CPUs")
	maxConcurrent := flag.Int("max-concurrent", 4, "planning requests in flight before 503s")
	timeout := flag.Duration("timeout", 120*time.Second, "per-request planning deadline (also caps timeout_ms)")
	maxDesigns := flag.Int("max-designs", 8, "design cache sessions kept before LRU eviction")
	flag.Parse()

	eng := core.NewEngine(core.EngineOptions{
		MaxDesigns: *maxDesigns,
		Workers:    innerWorkers(*workers, *maxConcurrent),
	})
	srv := service.New(service.Options{
		Engine:         eng,
		Workers:        *workers,
		MaxConcurrent:  *maxConcurrent,
		RequestTimeout: *timeout,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: stop accepting, let in-flight plans finish (or
	// hit their own deadlines), then exit.
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("shutting down: %s", eng)
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("serving on %s (workers %d, max-concurrent %d, timeout %s)",
		*addr, effectiveWorkers(*workers), *maxConcurrent, *timeout)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}

// effectiveWorkers mirrors the service's worker default for the banner.
func effectiveWorkers(workers int) int {
	if workers > 0 {
		return workers
	}
	return core.DefaultWorkers()
}

// innerWorkers is each request slot's share of the CPU budget, matching
// the split service.New applies.
func innerWorkers(workers, maxConcurrent int) int {
	if maxConcurrent < 1 {
		maxConcurrent = 4
	}
	_, inner := core.SplitWorkers(effectiveWorkers(workers), maxConcurrent)
	return inner
}
