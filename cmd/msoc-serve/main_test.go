package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startRun boots run() on an ephemeral port with an injected signal
// channel, returning the base URL, the signal channel, and the channel
// run's error lands on.
func startRun(t *testing.T, extra ...string) (base string, sigs chan os.Signal, done chan error) {
	t.Helper()
	sigs = make(chan os.Signal, 1)
	ready := make(chan string, 1)
	done = make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() { done <- run(args, sigs, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, sigs, done
	case err := <-done:
		t.Fatalf("run exited before serving: %v", err)
		return "", nil, nil
	}
}

// A SIGTERM-style signal must drain gracefully: an in-flight sweep
// finishes with a 200 while the listener stops accepting, and run
// returns nil with nothing left running.
func TestGracefulShutdownDrainsInFlightRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	base, sigs, done := startRun(t, "-drain", "30s")

	type result struct {
		status int
		body   []byte
		err    error
	}
	sweepDone := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/sweep", "application/json",
			strings.NewReader(`{"widths":[32,40,48],"wts":[0.5]}`))
		if err != nil {
			sweepDone <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		sweepDone <- result{status: resp.StatusCode, body: body}
	}()

	// Give the sweep a moment to be in flight, then pull the trigger.
	time.Sleep(100 * time.Millisecond)
	sigs <- syscall.SIGTERM

	select {
	case res := <-sweepDone:
		if res.err != nil {
			t.Fatalf("in-flight sweep failed during drain: %v", res.err)
		}
		if res.status != http.StatusOK {
			t.Fatalf("in-flight sweep: status %d during drain: %s", res.status, res.body)
		}
		if !bytes.Contains(res.body, []byte(`"points"`)) {
			t.Fatalf("drained sweep returned no points: %s", res.body)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("in-flight sweep never completed during drain")
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after graceful shutdown, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run never returned after the shutdown signal")
	}

	// The listener must be gone.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}

// A server with fleet flags must also come down cleanly: the probe loop
// stops with run instead of leaking.
func TestGracefulShutdownStopsFleetProbes(t *testing.T) {
	base, sigs, done := startRun(t,
		"-worker-urls", "http://127.0.0.1:1", // nothing listens there
		"-probe-interval", "20ms", "-probe-timeout", "50ms")

	// Let a few probes fail, proving the loop is live.
	time.Sleep(100 * time.Millisecond)
	resp, err := http.Get(base + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte("http://127.0.0.1:1")) {
		t.Fatalf("fleet does not list the configured worker: %s", body)
	}

	sigs <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run never returned; probe loop likely blocked shutdown")
	}
}

// Bad flags must fail run, not the process (flag.ContinueOnError).
func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, nil, nil); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
}
