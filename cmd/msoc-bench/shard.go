package main

// The -shard and -merge modes are the CLI face of the sharded grid
// runner (internal/experiments): -shard computes one deterministic
// slice of the experiment grid on this machine and writes a mergeable
// partial result; -merge recombines a complete set of partials — e.g.
// CI matrix artifacts — into the full tables, bit-identical to an
// unsharded run.

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"mixsoc/internal/experiments"
)

// gridByName resolves the -grid flag.
func gridByName(name string) (experiments.Grid, error) {
	switch name {
	case "paper":
		return experiments.PaperGrid(), nil
	case "table4":
		return experiments.Table4Grid(), nil
	}
	return experiments.Grid{}, fmt.Errorf("unknown -grid %q (want paper or table4)", name)
}

// runShardMode computes shard N of an M-way split of the grid and
// writes SHARD_N_of_M.json into out.
func runShardMode(spec, gridName, out string) {
	nStr, mStr, ok := strings.Cut(spec, "/")
	n, errN := strconv.Atoi(nStr)
	m, errM := strconv.Atoi(mStr)
	if !ok || errN != nil || errM != nil {
		log.Fatalf("-shard wants N/M (e.g. 0/2), got %q", spec)
	}
	g, err := gridByName(gridName)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := experiments.RunShard(nil, g, n, m)
	if err != nil {
		log.Fatal(err)
	}
	secs := time.Since(start).Seconds()
	path := filepath.Join(out, fmt.Sprintf("SHARD_%d_of_%d.json", n, m))
	if err := experiments.WriteShardFile(path, res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shard %d/%d (%s grid): %d of %d cells in %.3fs -> %s\n",
		n, m, gridName, len(res.CellIDs), len(g.Cells()), secs, path)
}

// collectShardFiles expands the -merge arguments into shard files: a
// directory contributes its SHARD_*.json children, or — so CI artifact
// layouts with one directory per matrix job merge without renaming —
// its grandchildren one level down when it has no direct ones.
func collectShardFiles(args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"."}
	}
	var files []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			return nil, fmt.Errorf("unexpected flag %q after -merge's paths; flags go before the positional arguments", a)
		}
		info, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, a)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(a, "SHARD_*.json"))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			matches, err = filepath.Glob(filepath.Join(a, "*", "SHARD_*.json"))
			if err != nil {
				return nil, err
			}
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("no SHARD_*.json files under %s", a)
		}
		sort.Strings(matches)
		files = append(files, matches...)
	}
	return files, nil
}

// runMergeMode recombines shard partials and prints the full tables.
func runMergeMode(args []string) {
	files, err := collectShardFiles(args)
	if err != nil {
		log.Fatal(err)
	}
	parts := make([]*experiments.ShardResult, 0, len(files))
	for _, f := range files {
		r, err := experiments.ReadShardFile(f)
		if err != nil {
			log.Fatal(err)
		}
		parts = append(parts, r)
	}
	merged, err := experiments.Merge(parts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged %d shards covering %d cells\n\n", len(parts), len(merged.Grid.Cells()))
	if merged.Table3 != nil {
		fmt.Print(experiments.RenderTable3(merged.Table3))
		fmt.Println()
	}
	if merged.Table4 != nil {
		fmt.Print(experiments.RenderTable4(merged.Table4))
		fmt.Printf("mean reduction %.2f%%, optimal %.1f%%\n\n", merged.Table4.MeanReduction(), 100*merged.Table4.OptimalFraction())
	}
	if len(merged.Curve) > 0 {
		fmt.Println("all-share test time by TAM width:")
		for _, s := range merged.Curve {
			fmt.Printf("  W=%-3d  %d cycles\n", s.Width, s.Cycles)
		}
	}
}
