package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir string, r report) {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_"+r.Name+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestComparePair(t *testing.T) {
	oldR := &report{Name: "x", BestSeconds: 1.0, Metrics: map[string]float64{"m": 2}}

	c := comparePair(oldR, &report{Name: "x", BestSeconds: 1.1, Metrics: map[string]float64{"m": 2}}, 15, 0.01)
	if c.Regressed || len(c.Drifted) != 0 {
		t.Errorf("10%% growth flagged: %+v", c)
	}
	c = comparePair(oldR, &report{Name: "x", BestSeconds: 1.2, Metrics: map[string]float64{"m": 2}}, 15, 0.01)
	if !c.Regressed {
		t.Error("20% growth not flagged at 15% threshold")
	}
	c = comparePair(oldR, &report{Name: "x", BestSeconds: 0.5, Metrics: map[string]float64{"m": 3}}, 15, 0.01)
	if c.Regressed || len(c.Drifted) != 1 {
		t.Errorf("metric drift not detected: %+v", c)
	}
	c = comparePair(oldR, &report{Name: "x", BestSeconds: 0.5, Metrics: nil}, 15, 0.01)
	if len(c.Drifted) != 1 || !strings.Contains(c.Drifted[0], "missing") {
		t.Errorf("missing metric not detected: %+v", c)
	}
	// Noise floor: microsecond benches are not time-compared.
	tiny := &report{Name: "x", BestSeconds: 0.0004, Metrics: map[string]float64{"m": 2}}
	c = comparePair(tiny, &report{Name: "x", BestSeconds: 0.002, Metrics: map[string]float64{"m": 2}}, 15, 0.01)
	if c.Regressed {
		t.Errorf("sub-floor timing compared: %+v", c)
	}
}

func TestRunCompareEndToEnd(t *testing.T) {
	oldDir, newDir := t.TempDir(), t.TempDir()
	writeReport(t, oldDir, report{Name: "a", BestSeconds: 1.0, Metrics: map[string]float64{"m": 1}})
	writeReport(t, oldDir, report{Name: "b", BestSeconds: 2.0, Metrics: map[string]float64{"n": 7}})
	writeReport(t, newDir, report{Name: "a", BestSeconds: 0.5, Metrics: map[string]float64{"m": 1}})
	writeReport(t, newDir, report{Name: "b", BestSeconds: 2.1, Metrics: map[string]float64{"n": 7}})
	writeReport(t, newDir, report{Name: "c", BestSeconds: 0.1, Metrics: nil})

	lines, failures, err := runCompare(oldDir, newDir, 15, 0.01, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Errorf("healthy trail flagged: %v\n%s", failures, strings.Join(lines, "\n"))
	}
	joined := strings.Join(lines, "\n")
	for _, frag := range []string{"a  ", "b  ", "new benchmark"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("report missing %q:\n%s", frag, joined)
		}
	}

	// Regress b beyond threshold; the failure names the benchmark and
	// both wall times.
	writeReport(t, newDir, report{Name: "b", BestSeconds: 2.5, Metrics: map[string]float64{"n": 7}})
	_, failures, err = runCompare(oldDir, newDir, 15, 0.01, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || !strings.Contains(failures[0], "b: wall time 2.000s -> 2.500s") {
		t.Errorf("25%% regression misreported: %v", failures)
	}

	// Regressing AND drifting reports both statuses, and tolerating the
	// drift must not wave the time regression through.
	writeReport(t, newDir, report{Name: "b", BestSeconds: 3.0, Metrics: map[string]float64{"n": 9}})
	lines, failures, err = runCompare(oldDir, newDir, 15, 0.01, false)
	if err != nil {
		t.Fatal(err)
	}
	joined = strings.Join(lines, "\n")
	if len(failures) != 2 || !strings.Contains(joined, "REGRESSED") || !strings.Contains(joined, "METRICS DRIFTED") {
		t.Errorf("combined regression+drift misreported (%v):\n%s", failures, joined)
	}
	// The drift failure names the metric and its values, so a many-entry
	// trail still tells the operator exactly what moved.
	if !strings.Contains(strings.Join(failures, "\n"), "b: metric n: 7 -> 9") {
		t.Errorf("drift failure does not name the metric: %v", failures)
	}
	if _, failures, _ = runCompare(oldDir, newDir, 15, 0.01, true); len(failures) != 1 {
		t.Errorf("-allow-metric-drift waved a time regression through: %v", failures)
	}

	// Drift a metric; tolerated only with allowDrift.
	writeReport(t, newDir, report{Name: "b", BestSeconds: 2.0, Metrics: map[string]float64{"n": 8}})
	_, failures, err = runCompare(oldDir, newDir, 15, 0.01, false)
	if err != nil || len(failures) != 1 || !strings.Contains(failures[0], "metric n: 7 -> 8") {
		t.Errorf("metric drift misreported (failures=%v err=%v)", failures, err)
	}
	_, failures, err = runCompare(oldDir, newDir, 15, 0.01, true)
	if err != nil || len(failures) != 0 {
		t.Errorf("tolerated drift still failed (failures=%v err=%v)", failures, err)
	}

	// A benchmark vanishing from the new trail fails the compare.
	if err := os.Remove(filepath.Join(newDir, "BENCH_a.json")); err != nil {
		t.Fatal(err)
	}
	writeReport(t, newDir, report{Name: "b", BestSeconds: 2.0, Metrics: map[string]float64{"n": 7}})
	_, failures, err = runCompare(oldDir, newDir, 15, 0.01, false)
	if err != nil || len(failures) != 1 || !strings.Contains(failures[0], "a: missing") {
		t.Errorf("missing benchmark misreported (failures=%v err=%v)", failures, err)
	}

	// Single-file form.
	_, failures, err = runCompare(filepath.Join(oldDir, "BENCH_b.json"), filepath.Join(newDir, "BENCH_b.json"), 15, 0.01, false)
	if err != nil || len(failures) != 0 {
		t.Errorf("single-file compare failed (failures=%v err=%v)", failures, err)
	}
}
