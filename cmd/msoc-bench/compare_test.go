package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir string, r report) {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_"+r.Name+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestComparePair(t *testing.T) {
	oldR := &report{Name: "x", BestSeconds: 1.0, Metrics: map[string]float64{"m": 2}}

	c := comparePair(oldR, &report{Name: "x", BestSeconds: 1.1, Metrics: map[string]float64{"m": 2}}, 15, 0.01)
	if c.Regressed || len(c.Drifted) != 0 {
		t.Errorf("10%% growth flagged: %+v", c)
	}
	c = comparePair(oldR, &report{Name: "x", BestSeconds: 1.2, Metrics: map[string]float64{"m": 2}}, 15, 0.01)
	if !c.Regressed {
		t.Error("20% growth not flagged at 15% threshold")
	}
	c = comparePair(oldR, &report{Name: "x", BestSeconds: 0.5, Metrics: map[string]float64{"m": 3}}, 15, 0.01)
	if c.Regressed || len(c.Drifted) != 1 {
		t.Errorf("metric drift not detected: %+v", c)
	}
	c = comparePair(oldR, &report{Name: "x", BestSeconds: 0.5, Metrics: nil}, 15, 0.01)
	if len(c.Drifted) != 1 || !strings.Contains(c.Drifted[0], "missing") {
		t.Errorf("missing metric not detected: %+v", c)
	}
	// Noise floor: microsecond benches are not time-compared.
	tiny := &report{Name: "x", BestSeconds: 0.0004, Metrics: map[string]float64{"m": 2}}
	c = comparePair(tiny, &report{Name: "x", BestSeconds: 0.002, Metrics: map[string]float64{"m": 2}}, 15, 0.01)
	if c.Regressed {
		t.Errorf("sub-floor timing compared: %+v", c)
	}
}

func TestRunCompareEndToEnd(t *testing.T) {
	oldDir, newDir := t.TempDir(), t.TempDir()
	writeReport(t, oldDir, report{Name: "a", BestSeconds: 1.0, Metrics: map[string]float64{"m": 1}})
	writeReport(t, oldDir, report{Name: "b", BestSeconds: 2.0, Metrics: map[string]float64{"n": 7}})
	writeReport(t, newDir, report{Name: "a", BestSeconds: 0.5, Metrics: map[string]float64{"m": 1}})
	writeReport(t, newDir, report{Name: "b", BestSeconds: 2.1, Metrics: map[string]float64{"n": 7}})
	writeReport(t, newDir, report{Name: "c", BestSeconds: 0.1, Metrics: nil})

	lines, ok, err := runCompare(oldDir, newDir, 15, 0.01, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("healthy trail flagged:\n%s", strings.Join(lines, "\n"))
	}
	joined := strings.Join(lines, "\n")
	for _, frag := range []string{"a  ", "b  ", "new benchmark"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("report missing %q:\n%s", frag, joined)
		}
	}

	// Regress b beyond threshold.
	writeReport(t, newDir, report{Name: "b", BestSeconds: 2.5, Metrics: map[string]float64{"n": 7}})
	_, ok, err = runCompare(oldDir, newDir, 15, 0.01, false)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("25% regression not flagged")
	}

	// Regressing AND drifting reports both statuses, and tolerating the
	// drift must not wave the time regression through.
	writeReport(t, newDir, report{Name: "b", BestSeconds: 3.0, Metrics: map[string]float64{"n": 9}})
	lines, ok, err = runCompare(oldDir, newDir, 15, 0.01, false)
	if err != nil {
		t.Fatal(err)
	}
	joined = strings.Join(lines, "\n")
	if ok || !strings.Contains(joined, "REGRESSED") || !strings.Contains(joined, "METRICS DRIFTED") {
		t.Errorf("combined regression+drift misreported:\n%s", joined)
	}
	if _, ok, _ = runCompare(oldDir, newDir, 15, 0.01, true); ok {
		t.Error("-allow-metric-drift waved a time regression through")
	}

	// Drift a metric; tolerated only with allowDrift.
	writeReport(t, newDir, report{Name: "b", BestSeconds: 2.0, Metrics: map[string]float64{"n": 8}})
	_, ok, err = runCompare(oldDir, newDir, 15, 0.01, false)
	if err != nil || ok {
		t.Errorf("metric drift not flagged (ok=%v err=%v)", ok, err)
	}
	_, ok, err = runCompare(oldDir, newDir, 15, 0.01, true)
	if err != nil || !ok {
		t.Errorf("tolerated drift still failed (ok=%v err=%v)", ok, err)
	}

	// A benchmark vanishing from the new trail fails the compare.
	if err := os.Remove(filepath.Join(newDir, "BENCH_a.json")); err != nil {
		t.Fatal(err)
	}
	writeReport(t, newDir, report{Name: "b", BestSeconds: 2.0, Metrics: map[string]float64{"n": 7}})
	_, ok, err = runCompare(oldDir, newDir, 15, 0.01, false)
	if err != nil || ok {
		t.Errorf("missing benchmark not flagged (ok=%v err=%v)", ok, err)
	}

	// Single-file form.
	_, ok, err = runCompare(filepath.Join(oldDir, "BENCH_b.json"), filepath.Join(newDir, "BENCH_b.json"), 15, 0.01, false)
	if err != nil || !ok {
		t.Errorf("single-file compare failed (ok=%v err=%v)", ok, err)
	}
}
