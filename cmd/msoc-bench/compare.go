package main

// The -compare mode turns the BENCH_*.json perf trail into an
// enforceable contract: given an old and a new trail (single files or
// directories of them), it diffs wall times and headline metrics and
// exits non-zero when the new trail is slower beyond a threshold — or
// when a metric changed at all, because a "perf" change that moves
// results is a correctness change wearing a disguise.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// comparison is the outcome of diffing one benchmark pair.
type comparison struct {
	Name       string
	OldSeconds float64
	NewSeconds float64
	Regressed  bool     // time regression beyond the threshold
	Drifted    []string // metrics that changed value or disappeared
	Notes      string
}

// loadReports reads one BENCH_*.json file or every one in a directory,
// keyed by benchmark name.
func loadReports(path string) (map[string]*report, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	files := []string{path}
	if info.IsDir() {
		files, err = filepath.Glob(filepath.Join(path, "BENCH_*.json"))
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("no BENCH_*.json files in %s", path)
		}
		sort.Strings(files)
	}
	out := make(map[string]*report, len(files))
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		var r report
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		if r.Name == "" {
			return nil, fmt.Errorf("%s: report has no name", f)
		}
		out[r.Name] = &r
	}
	return out, nil
}

// comparePair diffs one old/new report pair. regressPct is the allowed
// wall-time growth in percent; pairs where both best times are under
// minSeconds are too noisy to time-compare and only checked for metric
// drift.
func comparePair(oldR, newR *report, regressPct, minSeconds float64) comparison {
	c := comparison{Name: newR.Name, OldSeconds: oldR.BestSeconds, NewSeconds: newR.BestSeconds}
	if oldR.BestSeconds >= minSeconds || newR.BestSeconds >= minSeconds {
		if newR.BestSeconds > oldR.BestSeconds*(1+regressPct/100) {
			c.Regressed = true
		}
	} else {
		c.Notes = fmt.Sprintf("both under %.3fs, time not compared", minSeconds)
	}
	keys := make([]string, 0, len(oldR.Metrics))
	for k := range oldR.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		nv, ok := newR.Metrics[k]
		switch {
		case !ok:
			c.Drifted = append(c.Drifted, fmt.Sprintf("%s: %v -> (missing)", k, oldR.Metrics[k]))
		case nv != oldR.Metrics[k]:
			c.Drifted = append(c.Drifted, fmt.Sprintf("%s: %v -> %v", k, oldR.Metrics[k], nv))
		}
	}
	return c
}

// runCompare diffs two trails and renders a report as lines. The second
// return value names every failure precisely — which benchmark, and
// which metric with its old and new values, or the wall-time growth —
// so a failing CI log (or log.Fatal) says what drifted instead of just
// "see above"; it is empty when the trail is healthy. Metric drift is
// excluded from the failures (but still rendered) when allowDrift is
// set.
func runCompare(oldPath, newPath string, regressPct, minSeconds float64, allowDrift bool) (lines, failures []string, err error) {
	oldReps, err := loadReports(oldPath)
	if err != nil {
		return nil, nil, fmt.Errorf("old trail: %w", err)
	}
	newReps, err := loadReports(newPath)
	if err != nil {
		return nil, nil, fmt.Errorf("new trail: %w", err)
	}

	names := make([]string, 0, len(oldReps))
	for name := range oldReps {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		oldR := oldReps[name]
		newR, found := newReps[name]
		if !found {
			lines = append(lines, fmt.Sprintf("%-16s MISSING from new trail", name))
			failures = append(failures, fmt.Sprintf("%s: missing from new trail", name))
			continue
		}
		c := comparePair(oldR, newR, regressPct, minSeconds)
		delta := ""
		if c.OldSeconds > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(c.NewSeconds-c.OldSeconds)/c.OldSeconds)
		}
		var statuses []string
		if c.Regressed {
			statuses = append(statuses, fmt.Sprintf("REGRESSED (> %.0f%%)", regressPct))
			failures = append(failures, fmt.Sprintf("%s: wall time %.3fs -> %.3fs (%s, limit %.0f%%)",
				name, c.OldSeconds, c.NewSeconds, delta, regressPct))
		}
		if len(c.Drifted) > 0 {
			if allowDrift {
				statuses = append(statuses, "metrics drifted (tolerated)")
			} else {
				statuses = append(statuses, "METRICS DRIFTED")
				failures = append(failures, fmt.Sprintf("%s: metric %s", name, strings.Join(c.Drifted, "; metric ")))
			}
		}
		status := "ok"
		if len(statuses) > 0 {
			status = strings.Join(statuses, ", ")
		}
		line := fmt.Sprintf("%-16s %8.3fs -> %8.3fs  %8s  %s", name, c.OldSeconds, c.NewSeconds, delta, status)
		if c.Notes != "" {
			line += " [" + c.Notes + "]"
		}
		lines = append(lines, line)
		for _, d := range c.Drifted {
			lines = append(lines, "                   "+d)
		}
	}
	extra := make([]string, 0, len(newReps))
	for name := range newReps {
		if _, found := oldReps[name]; !found {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		lines = append(lines, fmt.Sprintf("%-16s new benchmark (%.3fs), no baseline", name, newReps[name].BestSeconds))
	}
	return lines, failures, nil
}
