// Command msoc-bench times the planning hot paths and writes
// machine-readable BENCH_<name>.json files, so successive changes to the
// packer or the planners leave a comparable perf trail.
//
// Usage:
//
//	msoc-bench [-out dir] [-repeat n] [-workers n] [-bench name]
//	msoc-bench -compare old new [-regress-pct p] [-allow-metric-drift]
//
// Each benchmark regenerates a full experiment through the same code
// paths as cmd/msoc-tables and the go test benchmarks, records the best
// wall time over -repeat runs, and embeds the experiment's headline
// metrics so a perf change that altered results is immediately visible.
//
// The -compare form diffs two perf trails — single BENCH_*.json files
// or directories of them — and exits non-zero when a benchmark's best
// wall time regressed by more than -regress-pct (default 15%) or any
// headline metric changed, making the trail enforceable in CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"mixsoc/internal/analog"
	"mixsoc/internal/core"
	"mixsoc/internal/experiments"
)

type report struct {
	Name        string             `json:"name"`
	GOOS        string             `json:"goos"`
	GOARCH      string             `json:"goarch"`
	GoVersion   string             `json:"go_version"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Repeats     int                `json:"repeats"`
	BestSeconds float64            `json:"best_wall_seconds"`
	AllSeconds  []float64          `json:"wall_seconds"`
	Metrics     map[string]float64 `json:"metrics"`
}

type benchmark struct {
	name string
	run  func() (map[string]float64, error)
}

func benchmarks() []benchmark {
	return []benchmark{
		{"table1", func() (map[string]float64, error) {
			rows, err := experiments.Table1(analog.PaperCostModel())
			if err != nil {
				return nil, err
			}
			m := map[string]float64{"combos": float64(len(rows))}
			for _, r := range rows {
				if r.Label == "{A,C}" {
					m["LTB{A,C}"] = r.LTB
				}
			}
			return m, nil
		}},
		{"table3", func() (map[string]float64, error) {
			res, err := experiments.Table3(nil, nil)
			if err != nil {
				return nil, err
			}
			m := map[string]float64{}
			for i, w := range res.Widths {
				m[fmt.Sprintf("spreadW%d", w)] = res.Spread[i]
			}
			return m, nil
		}},
		{"table4", func() (map[string]float64, error) {
			res, err := experiments.Table4(nil, nil, nil)
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"meanReduction%": res.MeanReduction(),
				"optimal%":       100 * res.OptimalFraction(),
			}, nil
		}},
		{"plan-heuristic", func() (map[string]float64, error) {
			pl := core.NewPlanner(experiments.Design(), 48, core.EqualWeights)
			res, err := pl.CostOptimizer()
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"NEval":    float64(res.NEval),
				"cost":     res.Best.Cost,
				"makespan": float64(res.Best.TestTime),
			}, nil
		}},
		{"plan-exhaustive", func() (map[string]float64, error) {
			pl := core.NewPlanner(experiments.Design(), 48, core.EqualWeights)
			res, err := pl.Exhaustive()
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"NEval":    float64(res.NEval),
				"cost":     res.Best.Cost,
				"makespan": float64(res.Best.TestTime),
			}, nil
		}},
		// sweep-warm exercises the cross-width warm-start chain. Its
		// wall time is the point; its metrics are intentionally NOT the
		// cold sweep's (warm packing trades a few percent of schedule
		// quality), so they are tracked as their own trail entries.
		{"sweep-warm", func() (map[string]float64, error) {
			points, err := core.SweepWith(experiments.Design(), experiments.PaperWidths,
				[]core.Weights{core.EqualWeights}, core.SweepOptions{Exhaustive: true, WarmStart: true})
			if err != nil {
				return nil, err
			}
			best, err := core.BestOver(points)
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"points":   float64(len(points)),
				"bestCost": best.Result.Best.Cost,
				"bestW":    float64(best.Width),
			}, nil
		}},
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("msoc-bench: ")
	out := flag.String("out", ".", "directory for the BENCH_*.json files")
	repeat := flag.Int("repeat", 3, "runs per benchmark; the best wall time is reported")
	workers := flag.Int("workers", 0, "cap the worker pool (0 = all CPUs)")
	which := flag.String("bench", "all", "benchmark to run: table1, table3, table4, plan-heuristic, plan-exhaustive, sweep-warm, or all")
	compare := flag.Bool("compare", false, "compare two perf trails (files or directories) given as positional args and exit non-zero on regression")
	regressPct := flag.Float64("regress-pct", 15, "with -compare: allowed wall-time growth in percent")
	minSeconds := flag.Float64("min-seconds", 0.01, "with -compare: skip the time check when both runs are under this many seconds (noise floor)")
	allowDrift := flag.Bool("allow-metric-drift", false, "with -compare: tolerate changed headline metrics instead of failing")
	flag.Parse()

	if *compare {
		args := flag.Args()
		if len(args) < 2 {
			log.Fatal("-compare needs two arguments: old and new (BENCH_*.json files or directories)")
		}
		// flag.Parse stops at the first positional, so tolerate the
		// natural `-compare old new -regress-pct 20` ordering by
		// re-parsing whatever follows the two paths.
		if len(args) > 2 {
			fs := flag.NewFlagSet("compare", flag.ExitOnError)
			fs.Float64Var(regressPct, "regress-pct", *regressPct, "allowed wall-time growth in percent")
			fs.Float64Var(minSeconds, "min-seconds", *minSeconds, "noise floor for the time check")
			fs.BoolVar(allowDrift, "allow-metric-drift", *allowDrift, "tolerate changed headline metrics")
			if err := fs.Parse(args[2:]); err != nil {
				log.Fatal(err)
			}
			if fs.NArg() != 0 {
				log.Fatalf("-compare takes exactly two paths, got extra arguments %v", fs.Args())
			}
		}
		lines, ok, err := runCompare(args[0], args[1], *regressPct, *minSeconds, *allowDrift)
		if err != nil {
			log.Fatal(err)
		}
		for _, l := range lines {
			fmt.Println(l)
		}
		if !ok {
			log.Fatal("perf trail regressed (see above)")
		}
		fmt.Printf("perf trail ok: no regression beyond %.0f%%, metrics stable\n", *regressPct)
		return
	}

	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}
	if *repeat < 1 {
		*repeat = 1
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	ran := 0
	for _, b := range benchmarks() {
		if *which != "all" && *which != b.name {
			continue
		}
		ran++
		rep := report{
			Name:       b.name,
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Repeats:    *repeat,
		}
		for i := 0; i < *repeat; i++ {
			start := time.Now()
			metrics, err := b.run()
			secs := time.Since(start).Seconds()
			if err != nil {
				log.Fatalf("%s: %v", b.name, err)
			}
			rep.AllSeconds = append(rep.AllSeconds, secs)
			if rep.BestSeconds == 0 || secs < rep.BestSeconds {
				rep.BestSeconds = secs
			}
			rep.Metrics = metrics
		}
		path := filepath.Join(*out, "BENCH_"+rep.Name+".json")
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %8.3fs  -> %s\n", rep.Name, rep.BestSeconds, path)
	}
	if ran == 0 {
		log.Fatalf("unknown -bench %q", *which)
	}
}
