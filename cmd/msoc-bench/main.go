// Command msoc-bench times the planning hot paths and writes
// machine-readable BENCH_<name>.json files, so successive changes to the
// packer or the planners leave a comparable perf trail.
//
// Usage:
//
//	msoc-bench [-out dir] [-repeat n] [-workers n] [-bench name]
//	msoc-bench -compare old new [-regress-pct p] [-allow-metric-drift]
//	msoc-bench -trend trail1 trail2 trail3... [-regress-pct p]
//	msoc-bench -shard N/M [-grid paper|table4] [-out dir]
//	msoc-bench -merge dir-or-files...
//
// Each benchmark regenerates a full experiment through the same code
// paths as cmd/msoc-tables and the go test benchmarks, records the best
// wall time over -repeat runs, and embeds the experiment's headline
// metrics so a perf change that altered results is immediately visible.
//
// The -compare form diffs two perf trails — single BENCH_*.json files
// or directories of them — and exits non-zero when a benchmark's best
// wall time regressed by more than -regress-pct (default 15%) or any
// headline metric changed, naming exactly which benchmark and metric;
// this makes the trail enforceable in CI.
//
// The -trend form reads a whole chronological sequence of trails
// (files, directories, or one directory of trail subdirectories) and
// prints per-benchmark wall-time trajectories, exiting non-zero when a
// benchmark's latest time regressed beyond -regress-pct against its
// historical best.
//
// The -shard and -merge forms distribute the experiment grid across
// machines: -shard N/M computes the Nth of M deterministic slices of
// the grid's cells and writes a mergeable SHARD_*.json partial result;
// -merge recombines a complete set of partials into the full tables,
// bit-identical to an unsharded run, and fails loudly when cells are
// missing or duplicated.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"mixsoc/internal/analog"
	"mixsoc/internal/core"
	"mixsoc/internal/experiments"
	"mixsoc/internal/registry"
	"mixsoc/internal/socgen"
	"mixsoc/internal/tam"
)

type report struct {
	Name        string             `json:"name"`
	GOOS        string             `json:"goos"`
	GOARCH      string             `json:"goarch"`
	GoVersion   string             `json:"go_version"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Repeats     int                `json:"repeats"`
	BestSeconds float64            `json:"best_wall_seconds"`
	AllSeconds  []float64          `json:"wall_seconds"`
	Metrics     map[string]float64 `json:"metrics"`
}

type benchmark struct {
	name string
	run  func() (map[string]float64, error)
}

func benchmarks() []benchmark {
	return []benchmark{
		{"table1", func() (map[string]float64, error) {
			rows, err := experiments.Table1(analog.PaperCostModel())
			if err != nil {
				return nil, err
			}
			m := map[string]float64{"combos": float64(len(rows))}
			for _, r := range rows {
				if r.Label == "{A,C}" {
					m["LTB{A,C}"] = r.LTB
				}
			}
			return m, nil
		}},
		{"table3", func() (map[string]float64, error) {
			res, err := experiments.Table3(nil, nil)
			if err != nil {
				return nil, err
			}
			m := map[string]float64{}
			for i, w := range res.Widths {
				m[fmt.Sprintf("spreadW%d", w)] = res.Spread[i]
			}
			return m, nil
		}},
		{"table4", func() (map[string]float64, error) {
			res, err := experiments.Table4(nil, nil, nil)
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"meanReduction%": res.MeanReduction(),
				"optimal%":       100 * res.OptimalFraction(),
			}, nil
		}},
		{"plan-heuristic", func() (map[string]float64, error) {
			pl := core.NewPlanner(experiments.Design(), 48, core.EqualWeights)
			res, err := pl.CostOptimizer()
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"NEval":    float64(res.NEval),
				"cost":     res.Best.Cost,
				"makespan": float64(res.Best.TestTime),
			}, nil
		}},
		{"plan-exhaustive", func() (map[string]float64, error) {
			pl := core.NewPlanner(experiments.Design(), 48, core.EqualWeights)
			res, err := pl.Exhaustive()
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"NEval":    float64(res.NEval),
				"cost":     res.Best.Cost,
				"makespan": float64(res.Best.TestTime),
			}, nil
		}},
		// plan-bounded runs the same exhaustive W=48 cell as
		// plan-exhaustive with branch-and-bound pruning on. Its cost must
		// track plan-exhaustive's bit for bit (pruning is exact); NEval
		// and pruned record how much packing the bound saved.
		{"plan-bounded", func() (map[string]float64, error) {
			pl := core.NewPlanner(experiments.Design(), 48, core.EqualWeights)
			pl.Bounded = true
			res, err := pl.Exhaustive()
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"NEval":    float64(res.NEval),
				"pruned":   float64(res.Pruned),
				"cost":     res.Best.Cost,
				"makespan": float64(res.Best.TestTime),
			}, nil
		}},
		// plan-rectangle runs the plan-heuristic cell through the
		// rectangle bin-packing backend, so the alternative packer keeps
		// its own perf and schedule-quality trail next to the occupancy
		// default (its metrics are intentionally its own, not
		// plan-heuristic's: a different packer may trade makespan).
		{"plan-rectangle", func() (map[string]float64, error) {
			pk, err := core.PackerFor(tam.BackendRectangle)
			if err != nil {
				return nil, err
			}
			pl := core.NewPlanner(experiments.Design(), 48, core.EqualWeights)
			pl.Packer = pk
			res, err := pl.CostOptimizer()
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"NEval":    float64(res.NEval),
				"cost":     res.Best.Cost,
				"makespan": float64(res.Best.TestTime),
			}, nil
		}},
		// The registry benchmarks pin Cost_Optimizer on SOCs the paper
		// never ran: the small, mid-size and bottleneck-bound ITC'02
		// families, each with their mixed-signal analog subset.
		registryBenchmark("d695m", 32),
		registryBenchmark("g1023m", 32),
		registryBenchmark("t512505m", 32),
		// near-dup-cache is the module-cache workload: one engine plans a
		// generated design plus seven near-duplicates (one module's
		// pattern count bumped each), the serving story for generated SOC
		// populations. The stair hit/miss counters are deterministic
		// contract numbers; the wall time is where the cache shows up.
		{"near-dup-cache", nearDupCacheBenchmark},
		// sweep-warm exercises the cross-width warm-start chain. Its
		// wall time is the point; its metrics are intentionally NOT the
		// cold sweep's (warm packing trades a few percent of schedule
		// quality), so they are tracked as their own trail entries.
		{"sweep-warm", func() (map[string]float64, error) {
			points, err := core.SweepWith(experiments.Design(), experiments.PaperWidths,
				[]core.Weights{core.EqualWeights}, core.SweepOptions{Exhaustive: true, WarmStart: true})
			if err != nil {
				return nil, err
			}
			best, err := core.BestOver(points)
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"points":   float64(len(points)),
				"bestCost": best.Result.Best.Cost,
				"bestW":    float64(best.Width),
			}, nil
		}},
	}
}

// registryBenchmark times Cost_Optimizer on a named registry design at
// the given TAM width, reported as plan-<name>.
func registryBenchmark(name string, width int) benchmark {
	return benchmark{"plan-" + name, func() (map[string]float64, error) {
		d, err := registry.Lookup(name)
		if err != nil {
			return nil, err
		}
		pl := core.NewPlanner(d, width, core.EqualWeights)
		res, err := pl.CostOptimizer()
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"NEval":    float64(res.NEval),
			"cost":     res.Best.Cost,
			"makespan": float64(res.Best.TestTime),
		}, nil
	}}
}

// nearDupCacheBenchmark plans a generated design and seven
// near-duplicates of it on one shared engine. Every design differs from
// the base in exactly one module, so the cross-design module staircase
// store should serve all the unchanged modules from cache; the metrics
// record that sharing (and the summed best costs, so a cache bug that
// moved results would drift the trail).
func nearDupCacheBenchmark() (map[string]float64, error) {
	const variants = 8
	base, err := socgen.Generate(socgen.Options{Seed: 7, Class: socgen.Small})
	if err != nil {
		return nil, err
	}
	designs := []*core.Design{base}
	cores := base.Digital.Cores()
	for i := 1; i < variants; i++ {
		nd, err := core.CloneDesign(base)
		if err != nil {
			return nil, err
		}
		nd.Name = fmt.Sprintf("%s-rev%d", base.Name, i)
		m := nd.Digital.Cores()[(i-1)%len(cores)]
		if len(m.Tests) == 0 {
			return nil, fmt.Errorf("generated module %d has no tests to perturb", m.ID)
		}
		m.Tests[0].Patterns += i
		designs = append(designs, nd)
	}
	eng := core.NewEngine(core.EngineOptions{})
	var costSum float64
	for _, d := range designs {
		res, err := eng.Plan(context.Background(), d, 16, core.EqualWeights)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.Name, err)
		}
		costSum += res.Best.Cost
	}
	em := eng.Metrics()
	return map[string]float64{
		"designs":     variants,
		"stairHits":   float64(em.ModuleStairs.Hits),
		"stairMisses": float64(em.ModuleStairs.Misses),
		"jobBuilds":   float64(em.DigitalJobs.Misses),
		"costSum":     costSum,
	}, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("msoc-bench: ")
	out := flag.String("out", ".", "directory for the BENCH_*.json files")
	repeat := flag.Int("repeat", 3, "runs per benchmark; the best wall time is reported")
	workers := flag.Int("workers", 0, "cap the worker pool (0 = all CPUs)")
	which := flag.String("bench", "all", "benchmark to run: table1, table3, table4, plan-heuristic, plan-exhaustive, plan-bounded, plan-rectangle, plan-d695m, plan-g1023m, plan-t512505m, near-dup-cache, sweep-warm, or all")
	compare := flag.Bool("compare", false, "compare two perf trails (files or directories) given as positional args and exit non-zero on regression")
	trend := flag.Bool("trend", false, "print per-benchmark wall-time trajectories across the trails given as positional args (chronological order) and exit non-zero on regression")
	shardSpec := flag.String("shard", "", "compute one shard of the experiment grid, as N/M (e.g. 0/2); writes SHARD_N_of_M.json into -out")
	gridName := flag.String("grid", "paper", "with -shard: which grid to run, paper (Table 3 + Table 4 + width curve) or table4")
	merge := flag.Bool("merge", false, "merge the SHARD_*.json partial results given as positional args (files or directories) and print the recombined tables")
	regressPct := flag.Float64("regress-pct", 15, "with -compare/-trend: allowed wall-time growth in percent")
	minSeconds := flag.Float64("min-seconds", 0.01, "with -compare/-trend: skip the time check under this many seconds (noise floor)")
	allowDrift := flag.Bool("allow-metric-drift", false, "with -compare: tolerate changed headline metrics instead of failing")
	flag.Parse()

	// flag.Parse stops at the first positional, so tolerate the natural
	// `-compare old new -regress-pct 20` ordering by re-parsing whatever
	// follows the positional arguments.
	reparseTail := func(mode string, args []string) []string {
		split := len(args)
		for i, a := range args {
			if strings.HasPrefix(a, "-") {
				split = i
				break
			}
		}
		if split == len(args) {
			return args
		}
		fs := flag.NewFlagSet(mode, flag.ExitOnError)
		fs.Float64Var(regressPct, "regress-pct", *regressPct, "allowed wall-time growth in percent")
		fs.Float64Var(minSeconds, "min-seconds", *minSeconds, "noise floor for the time check")
		fs.BoolVar(allowDrift, "allow-metric-drift", *allowDrift, "tolerate changed headline metrics")
		if err := fs.Parse(args[split:]); err != nil {
			log.Fatal(err)
		}
		return append(append([]string{}, args[:split]...), fs.Args()...)
	}

	// Cap the pool before dispatching on mode, so -workers also governs
	// the -shard grid computation.
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	if *compare {
		args := reparseTail("compare", flag.Args())
		if len(args) != 2 {
			log.Fatal("-compare needs two arguments: old and new (BENCH_*.json files or directories)")
		}
		lines, failures, err := runCompare(args[0], args[1], *regressPct, *minSeconds, *allowDrift)
		if err != nil {
			log.Fatal(err)
		}
		for _, l := range lines {
			fmt.Println(l)
		}
		if len(failures) > 0 {
			log.Fatalf("perf trail check failed:\n  %s", strings.Join(failures, "\n  "))
		}
		fmt.Printf("perf trail ok: no regression beyond %.0f%%, metrics stable\n", *regressPct)
		return
	}

	if *trend {
		args := reparseTail("trend", flag.Args())
		lines, failures, err := runTrend(args, *regressPct, *minSeconds)
		if err != nil {
			log.Fatal(err)
		}
		for _, l := range lines {
			fmt.Println(l)
		}
		if len(failures) > 0 {
			log.Fatalf("perf trend regressed:\n  %s", strings.Join(failures, "\n  "))
		}
		fmt.Printf("perf trend ok: no regression beyond %.0f%% vs historical best\n", *regressPct)
		return
	}

	if *shardSpec != "" {
		runShardMode(*shardSpec, *gridName, *out)
		return
	}

	if *merge {
		runMergeMode(flag.Args())
		return
	}

	if *repeat < 1 {
		*repeat = 1
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	ran := 0
	for _, b := range benchmarks() {
		if *which != "all" && *which != b.name {
			continue
		}
		ran++
		rep := report{
			Name:       b.name,
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Repeats:    *repeat,
		}
		for i := 0; i < *repeat; i++ {
			start := time.Now()
			metrics, err := b.run()
			secs := time.Since(start).Seconds()
			if err != nil {
				log.Fatalf("%s: %v", b.name, err)
			}
			rep.AllSeconds = append(rep.AllSeconds, secs)
			if rep.BestSeconds == 0 || secs < rep.BestSeconds {
				rep.BestSeconds = secs
			}
			rep.Metrics = metrics
		}
		path := filepath.Join(*out, "BENCH_"+rep.Name+".json")
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %8.3fs  -> %s\n", rep.Name, rep.BestSeconds, path)
	}
	if ran == 0 {
		log.Fatalf("unknown -bench %q", *which)
	}
}
