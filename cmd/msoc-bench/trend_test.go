package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTrail lays down one synthetic perf trail directory.
func writeTrail(t *testing.T, parent, name string, reps ...report) string {
	t.Helper()
	dir := filepath.Join(parent, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, r := range reps {
		writeReport(t, dir, r)
	}
	return dir
}

// TestRunTrendFlagsInjectedRegression is the acceptance check for the
// trend mode: across three synthetic trails, a benchmark whose latest
// time jumps beyond the threshold is flagged by name with both times,
// and a flat benchmark is not.
func TestRunTrendFlagsInjectedRegression(t *testing.T) {
	root := t.TempDir()
	t1 := writeTrail(t, root, "2026-01-01",
		report{Name: "steady", BestSeconds: 1.0, Metrics: map[string]float64{"m": 1}},
		report{Name: "hot", BestSeconds: 0.50, Metrics: map[string]float64{"k": 2}})
	t2 := writeTrail(t, root, "2026-02-01",
		report{Name: "steady", BestSeconds: 1.02, Metrics: map[string]float64{"m": 1}},
		report{Name: "hot", BestSeconds: 0.48, Metrics: map[string]float64{"k": 2}})
	t3 := writeTrail(t, root, "2026-03-01",
		report{Name: "steady", BestSeconds: 0.99, Metrics: map[string]float64{"m": 1}},
		// Injected: 0.48s historical best -> 0.80s latest (+66%).
		report{Name: "hot", BestSeconds: 0.80, Metrics: map[string]float64{"k": 3}})

	lines, failures, err := runTrend([]string{t1, t2, t3}, 15, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	if len(failures) != 1 || !strings.Contains(failures[0], "hot: latest 0.800s vs best 0.480s") {
		t.Errorf("injected regression misreported (failures=%v):\n%s", failures, joined)
	}
	if !strings.Contains(joined, "REGRESSED") {
		t.Errorf("trajectory not flagged:\n%s", joined)
	}
	for _, line := range lines {
		if strings.HasPrefix(line, "steady") && strings.Contains(line, "REGRESSED") {
			t.Errorf("flat benchmark flagged: %s", line)
		}
	}
	// The metric change along the sequence is annotated.
	if !strings.Contains(joined, "metric k: 2 -> 3") {
		t.Errorf("metric change not annotated:\n%s", joined)
	}

	// A single parent directory expands to its trail subdirectories —
	// even when a stray BENCH_*.json sits at the top level beside them.
	writeReport(t, root, report{Name: "stray", BestSeconds: 1.0})
	linesDir, failuresDir, err := runTrend([]string{root}, 15, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(linesDir, "\n") != joined || len(failuresDir) != 1 {
		t.Errorf("parent-directory form disagrees with explicit trails:\n%s", strings.Join(linesDir, "\n"))
	}
}

func TestRunTrendEdgeCases(t *testing.T) {
	root := t.TempDir()
	t1 := writeTrail(t, root, "a", report{Name: "x", BestSeconds: 1.0})
	if _, _, err := runTrend([]string{t1}, 15, 0.01); err == nil {
		t.Error("single trail accepted")
	}

	// Sub-noise-floor trajectories are never time-flagged.
	t2 := writeTrail(t, root, "b", report{Name: "x", BestSeconds: 0.004})
	t3 := writeTrail(t, root, "c", report{Name: "x", BestSeconds: 0.009})
	tiny1 := writeTrail(t, root, "d", report{Name: "x", BestSeconds: 0.002})
	_, failures, err := runTrend([]string{tiny1, t2, t3}, 15, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Errorf("noise-floor trajectory flagged: %v", failures)
	}

	// A benchmark absent from the latest trail is annotated, not flagged.
	t4 := writeTrail(t, root, "e", report{Name: "x", BestSeconds: 1.0}, report{Name: "y", BestSeconds: 1.0})
	t5 := writeTrail(t, root, "f", report{Name: "x", BestSeconds: 1.0})
	lines, failures, err := runTrend([]string{t4, t5}, 15, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 || !strings.Contains(strings.Join(lines, "\n"), "absent from latest trail") {
		t.Errorf("vanished benchmark misreported (failures=%v):\n%s", failures, strings.Join(lines, "\n"))
	}
}

// TestResolveTrailsDisambiguatesLabels checks that two trails whose
// directories share a base name get distinguishable column labels.
func TestResolveTrailsDisambiguatesLabels(t *testing.T) {
	root := t.TempDir()
	before := writeTrail(t, filepath.Join(root, "before"), "bench-results", report{Name: "x", BestSeconds: 1})
	after := writeTrail(t, filepath.Join(root, "after"), "bench-results", report{Name: "x", BestSeconds: 1})
	trails, err := resolveTrails([]string{before, after})
	if err != nil {
		t.Fatal(err)
	}
	if trails[0].label != "before" || trails[1].label != "after" {
		t.Errorf("labels = %q, %q; want before, after", trails[0].label, trails[1].label)
	}
}

// TestCollectShardFiles covers the -merge argument expansion, including
// the one-level-deep artifact layout CI produces.
func TestCollectShardFiles(t *testing.T) {
	root := t.TempDir()
	flat := filepath.Join(root, "flat")
	if err := os.MkdirAll(flat, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"SHARD_0_of_2.json", "SHARD_1_of_2.json"} {
		if err := os.WriteFile(filepath.Join(flat, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	files, err := collectShardFiles([]string{flat})
	if err != nil || len(files) != 2 {
		t.Fatalf("flat layout: files=%v err=%v", files, err)
	}

	nested := filepath.Join(root, "nested")
	for _, sub := range []string{"shard-0", "shard-1"} {
		d := filepath.Join(nested, sub)
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(d, "SHARD_x.json"), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	files, err = collectShardFiles([]string{nested})
	if err != nil || len(files) != 2 {
		t.Fatalf("nested layout: files=%v err=%v", files, err)
	}

	if _, err := collectShardFiles([]string{t.TempDir()}); err == nil {
		t.Error("empty directory accepted")
	}
}
