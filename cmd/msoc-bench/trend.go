package main

// The -trend mode reads a whole sequence of perf trails — successive
// msoc-bench runs saved over time — and prints each benchmark's
// wall-time trajectory. Where -compare is a pairwise gate, -trend is
// the longitudinal view: it shows drift building up across many runs
// and flags benchmarks whose latest time regressed beyond a threshold
// against their historical best, naming the benchmark and both times.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// trail is one perf trail (one msoc-bench run) in a chronological
// sequence.
type trail struct {
	label string
	reps  map[string]*report
}

// resolveTrails interprets the -trend arguments. Each argument is one
// trail — a BENCH_*.json file or a directory of them — in chronological
// order. As a convenience, a single argument naming a directory whose
// subdirectories hold trails expands to those subdirectories (sorted by
// name, so date-stamped trail directories line up chronologically);
// the expansion wins even when a stray BENCH_*.json sits at the top
// level beside them.
func resolveTrails(args []string) ([]trail, error) {
	paths := args
	if len(args) == 1 {
		info, err := os.Stat(args[0])
		if err != nil {
			return nil, err
		}
		if info.IsDir() {
			entries, err := os.ReadDir(args[0])
			if err != nil {
				return nil, err
			}
			var subTrails []string
			for _, e := range entries {
				if !e.IsDir() {
					continue
				}
				sub := filepath.Join(args[0], e.Name())
				benches, err := filepath.Glob(filepath.Join(sub, "BENCH_*.json"))
				if err != nil {
					return nil, err
				}
				if len(benches) > 0 {
					subTrails = append(subTrails, sub)
				}
			}
			if len(subTrails) >= 2 {
				sort.Strings(subTrails)
				paths = subTrails
			}
		}
	}
	if len(paths) < 2 {
		return nil, fmt.Errorf("-trend needs at least two trails (files, directories, or one directory of trail subdirectories), got %d", len(paths))
	}
	trails := make([]trail, 0, len(paths))
	bases := map[string]int{}
	for _, p := range paths {
		reps, err := loadReports(p)
		if err != nil {
			return nil, fmt.Errorf("trail %s: %w", p, err)
		}
		trails = append(trails, trail{label: filepath.Base(p), reps: reps})
		bases[filepath.Base(p)]++
	}
	// Identical base names (before/bench-results vs after/bench-results)
	// would render indistinguishable columns; label those by their
	// parent directory instead (the column is tail-truncated, so a
	// parent/base compound would lose the distinguishing part).
	for i, p := range paths {
		if parent := filepath.Base(filepath.Dir(p)); bases[filepath.Base(p)] > 1 && parent != "." && parent != string(filepath.Separator) {
			trails[i].label = parent
		}
	}
	return trails, nil
}

// runTrend renders the wall-time trajectory of every benchmark across
// the trails and returns precise failure descriptions for benchmarks
// whose latest time exceeds their historical best by more than
// regressPct percent (ignoring trajectories that never leave the
// minSeconds noise floor). Metric changes along the sequence are
// annotated but, unlike in -compare, not failures: the trend view is
// longitudinal observability, the pairwise compare is the gate.
func runTrend(args []string, regressPct, minSeconds float64) (lines, failures []string, err error) {
	trails, err := resolveTrails(args)
	if err != nil {
		return nil, nil, err
	}

	names := map[string]bool{}
	for _, tr := range trails {
		for name := range tr.reps {
			names[name] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	header := fmt.Sprintf("%-16s", "benchmark")
	for _, tr := range trails {
		header += fmt.Sprintf("  %10s", truncateLabel(tr.label, 10))
	}
	lines = append(lines, header, strings.Repeat("-", len(header)))

	for _, name := range sorted {
		line := fmt.Sprintf("%-16s", name)
		best := -1.0 // best (lowest) time over all but the latest trail
		last := -1.0 // latest recorded time
		var firstRep, lastRep *report
		for i, tr := range trails {
			r, found := tr.reps[name]
			if !found {
				line += fmt.Sprintf("  %10s", "-")
				continue
			}
			line += fmt.Sprintf("  %9.3fs", r.BestSeconds)
			if firstRep == nil {
				firstRep = r
			}
			lastRep = r
			if i < len(trails)-1 && (best < 0 || r.BestSeconds < best) {
				best = r.BestSeconds
			}
			if i == len(trails)-1 {
				last = r.BestSeconds
			}
		}

		status := ""
		if last >= 0 && best >= 0 && (last >= minSeconds || best >= minSeconds) &&
			last > best*(1+regressPct/100) {
			status = fmt.Sprintf("  REGRESSED (best %.3fs, latest %.3fs, %+.1f%%)", best, last, 100*(last-best)/best)
			failures = append(failures, fmt.Sprintf("%s: latest %.3fs vs best %.3fs (%+.1f%%, limit %.0f%%)",
				name, last, best, 100*(last-best)/best, regressPct))
		} else if last < 0 {
			status = "  (absent from latest trail)"
		}
		lines = append(lines, line+status)

		// Annotate metric changes between the trajectory's endpoints,
		// including metrics that appeared or vanished along the way.
		if firstRep != nil && lastRep != nil && firstRep != lastRep {
			keys := map[string]bool{}
			for k := range firstRep.Metrics {
				keys[k] = true
			}
			for k := range lastRep.Metrics {
				keys[k] = true
			}
			sorted := make([]string, 0, len(keys))
			for k := range keys {
				sorted = append(sorted, k)
			}
			sort.Strings(sorted)
			for _, k := range sorted {
				ov, hadOld := firstRep.Metrics[k]
				nv, hasNew := lastRep.Metrics[k]
				switch {
				case hadOld && hasNew && nv != ov:
					lines = append(lines, fmt.Sprintf("                 metric %s: %v -> %v over the sequence", k, ov, nv))
				case hadOld && !hasNew:
					lines = append(lines, fmt.Sprintf("                 metric %s: %v -> (missing) over the sequence", k, ov))
				case !hadOld && hasNew:
					lines = append(lines, fmt.Sprintf("                 metric %s: (new) -> %v over the sequence", k, nv))
				}
			}
		}
	}
	return lines, failures, nil
}

func truncateLabel(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[len(s)-n:]
}
