// Command msoc-gen generates seeded synthetic mixed-signal SOCs: valid
// ITC'02-style designs for load tests, fuzz corpora, and planning
// experiments beyond the embedded benchmarks.
//
// Usage:
//
//	msoc-gen -seed 42 [-class small|medium|large] [-modules N] [-analog N]
//	         [-name gen42] [-out design.soc] [-analog-out cores.txt] [-json]
//
// By default the digital SOC is written to stdout in the ITC'02-style
// .soc text format. The output is a pure function of the flags: the
// same seed (and knobs) always produces byte-identical output, which CI
// enforces by diffing two runs — so a seed is a reproducible test case,
// shareable by number.
//
// With -json the full design — digital SOC plus generated analog
// cores — is written as canonical mixsoc design JSON, the body
// msoc-serve accepts as an inline design. With -analog-out the analog
// cores are additionally written to a file in the internal/analog text
// format.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mixsoc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msoc-gen: ")

	seed := flag.Int64("seed", 1, "generator seed; same seed, same bytes")
	classFlag := flag.String("class", "small", "size class: small, medium or large")
	modules := flag.Int("modules", 0, "digital core count (0: class default range)")
	analogN := flag.Int("analog", 0, "analog core count, 2-6 (0: class default range)")
	name := flag.String("name", "", "SOC name (default gen<seed>)")
	out := flag.String("out", "", "write the .soc (or -json design) here instead of stdout")
	analogOut := flag.String("analog-out", "", "also write the analog cores to this file (analog text format)")
	jsonOut := flag.Bool("json", false, "emit the full design as canonical JSON instead of .soc text")
	flag.Parse()

	class, err := mixsoc.ParseGenClass(*classFlag)
	if err != nil {
		log.Fatal(err)
	}
	design, err := mixsoc.Generate(mixsoc.GenOptions{
		Seed:        *seed,
		Name:        *name,
		Class:       class,
		Modules:     *modules,
		AnalogCores: *analogN,
	})
	if err != nil {
		log.Fatal(err)
	}

	var payload []byte
	if *jsonOut {
		payload, err = mixsoc.MarshalDesign(design)
		if err != nil {
			log.Fatal(err)
		}
		payload = append(payload, '\n')
	} else {
		payload = []byte(mixsoc.FormatSOC(design.Digital))
	}

	if *out != "" {
		if err := os.WriteFile(*out, payload, 0o644); err != nil {
			log.Fatal(err)
		}
	} else if _, err := os.Stdout.Write(payload); err != nil {
		log.Fatal(err)
	}

	if *analogOut != "" {
		text := mixsoc.FormatAnalogCores(design.Analog)
		if err := os.WriteFile(*analogOut, []byte(text), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Fprintf(os.Stderr, "msoc-gen: %s (%d analog cores, seed %d)\n",
		design.Digital, len(design.Analog), *seed)
}
