// Command msoc-socinfo inspects a digital SOC description: module
// summary, test-data volumes, and per-core wrapper staircases.
//
// Usage:
//
//	msoc-socinfo [-soc file.soc] [-width 64] [-top 10]
//
// Without -soc it describes the embedded p93791 benchmark.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"mixsoc"
	"mixsoc/internal/wrapper"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msoc-socinfo: ")

	socPath := flag.String("soc", "", "SOC file; default: embedded p93791")
	width := flag.Int("width", 64, "maximum TAM width for the wrapper staircases")
	top := flag.Int("top", 10, "how many cores to detail (largest first)")
	flag.Parse()

	soc := mixsoc.P93791()
	if *socPath != "" {
		f, err := os.Open(*socPath)
		if err != nil {
			log.Fatal(err)
		}
		var perr error
		soc, perr = mixsoc.LoadSOC(f)
		f.Close()
		if perr != nil {
			log.Fatal(perr)
		}
	}

	fmt.Println(soc)
	cores := soc.Cores()
	sort.Slice(cores, func(a, b int) bool {
		return cores[a].TestDataVolume() > cores[b].TestDataVolume()
	})

	var volume int64
	for _, m := range cores {
		volume += m.TestDataVolume()
	}
	fmt.Printf("total test data volume: %d bit-cycles\n", volume)
	fmt.Printf("ideal time at W=%d:     >= %d cycles\n\n", *width, volume/int64(*width))

	n := *top
	if n > len(cores) {
		n = len(cores)
	}
	fmt.Printf("%d largest cores (of %d):\n", n, len(cores))
	for _, m := range cores[:n] {
		pts, err := wrapper.Pareto(m, *width)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s io=%d/%d/%d scan=%d chains (%d bits) patterns=%d\n",
			m.Name, m.Inputs, m.Outputs, m.Bidirs, len(m.Scan), m.ScanBits(), m.Patterns())
		fmt.Printf("           staircase:")
		for i, p := range pts {
			if i > 0 && i%6 == 0 {
				fmt.Printf("\n                     ")
			}
			fmt.Printf(" %d:%d", p.Width, p.Time)
		}
		fmt.Println()
	}
}
