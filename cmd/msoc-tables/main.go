// Command msoc-tables regenerates the tables and figures of the paper's
// evaluation (Section 6) and prints them as text.
//
// Usage:
//
//	msoc-tables [-table 1|2|3|4|5|fig5|all]
//
// Table "5" is the Section 5 implementation-facts summary. The default
// regenerates everything. Tables 3 and 4 run the TAM optimizer many
// times and take a few seconds.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"mixsoc/internal/analog"
	"mixsoc/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msoc-tables: ")
	table := flag.String("table", "all", "which table to regenerate: 1, 2, 3, 4, 5, fig5, or all")
	rule := flag.String("areamodel", "paper", "wrapper area pricing for Table 1: paper, merged, or max")
	workers := flag.Int("workers", 0, "cap the worker pool for tables 3 and 4 (0 = all CPUs)")
	flag.Parse()

	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	var cm analog.CostModel
	switch *rule {
	case "paper":
		cm = analog.PaperCostModel()
	case "merged":
		cm = analog.DefaultCostModel()
	case "max":
		cm = analog.DefaultCostModel()
		cm.Rule = analog.MaxMemberArea
	default:
		log.Fatalf("unknown -areamodel %q (want paper, merged, or max)", *rule)
	}

	run := func(name string, f func() error) {
		if *table != "all" && *table != name {
			return
		}
		if err := f(); err != nil {
			log.Fatalf("table %s: %v", name, err)
		}
		fmt.Println()
	}

	run("2", func() error {
		fmt.Print(experiments.RenderTable2())
		return nil
	})
	run("1", func() error {
		rows, err := experiments.Table1(cm)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable1(rows))
		return nil
	})
	run("3", func() error {
		res, err := experiments.Table3(nil, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable3(res))
		return nil
	})
	run("4", func() error {
		res, err := experiments.Table4(nil, nil, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable4(res))
		return nil
	})
	run("5", func() error {
		f, err := experiments.Section5()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSection5(f))
		return nil
	})
	run("fig5", func() error {
		res, err := experiments.Figure5()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFigure5(res))
		return nil
	})

	if *table != "all" {
		switch *table {
		case "1", "2", "3", "4", "5", "fig5":
		default:
			fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
			os.Exit(2)
		}
	}
}
