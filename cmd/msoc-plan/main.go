// Command msoc-plan runs the mixed-signal test planner on a SOC and
// prints the chosen wrapper-sharing configuration, cost breakdown, and
// TAM schedule.
//
// Usage:
//
//	msoc-plan [-soc file.soc] [-width 32] [-wt 0.5] [-exhaustive] [-gantt] [-json]
//	          [-sweep [-widths 32,40,48,56,64] [-wts 0.5,0.25,0.75]]
//
// Without -soc the embedded p93791m benchmark is used (the paper's
// experimental SOC). With -soc, the digital SOC is read from the file
// and the paper's five analog cores are attached.
//
// With -json the plan is printed as the serving layer's PlanResponse
// JSON — byte-identical to what a msoc-serve POST /v1/plan returns for
// the same (width, wt, exhaustive) request, which is how CI smoke-tests
// the service against the CLI. Combined with -sweep, the output is the
// SweepResponse JSON for the -widths × -wts grid — byte-identical to a
// POST /v1/sweep of the same grid, whether the answering server plans
// in-process or coordinates the sweep across distributed workers (the
// distributed-smoke CI job diffs exactly that).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"

	"mixsoc"
	"mixsoc/internal/core"
	"mixsoc/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msoc-plan: ")

	socPath := flag.String("soc", "", "digital SOC file (ITC'02-style format); default: embedded p93791")
	width := flag.Int("width", 32, "SOC-level TAM width W")
	wt := flag.Float64("wt", 0.5, "test-time cost weight wT (wA = 1 - wT)")
	exhaustive := flag.Bool("exhaustive", false, "use exhaustive evaluation instead of Cost_Optimizer")
	gantt := flag.Bool("gantt", false, "print an ASCII Gantt chart of the schedule")
	csvPath := flag.String("csv", "", "write the schedule as CSV to this file")
	sweep := flag.Bool("sweep", false, "sweep the -widths × -wts grid instead of a single plan")
	widthsFlag := flag.String("widths", "32,40,48,56,64", "comma-separated TAM widths for -sweep")
	wtsFlag := flag.String("wts", "0.5,0.25,0.75", "comma-separated test-time weights wT for -sweep")
	jsonOut := flag.Bool("json", false, "print the plan (or, with -sweep, the sweep) as the serving layer's JSON (byte-identical to msoc-serve)")
	flag.Parse()

	design := mixsoc.P93791M()
	if *socPath != "" {
		f, err := os.Open(*socPath)
		if err != nil {
			log.Fatal(err)
		}
		soc, err := mixsoc.LoadSOC(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		design = &mixsoc.Design{Name: soc.Name + "-m", Digital: soc, Analog: mixsoc.PaperAnalogCores()}
	}

	if *sweep {
		widths, err := parseInts(*widthsFlag)
		if err != nil {
			log.Fatalf("-widths: %v", err)
		}
		wts, err := parseFloats(*wtsFlag)
		if err != nil {
			log.Fatalf("-wts: %v", err)
		}
		if *jsonOut {
			printSweepJSON(design, *socPath != "", widths, wts, *exhaustive)
			return
		}
		runSweep(design, widths, wts, *exhaustive)
		return
	}

	if *jsonOut {
		printJSON(design, *socPath != "", *width, *wt, *exhaustive)
		return
	}

	weights := mixsoc.Weights{Time: *wt, Area: 1 - *wt}
	planner := mixsoc.NewPlanner(design, *width, weights)

	var (
		res *mixsoc.Result
		err error
	)
	if *exhaustive {
		res, err = planner.Exhaustive()
	} else {
		res, err = planner.CostOptimizer()
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TAM width %d, weights wT=%.2f wA=%.2f\n\n", *width, weights.Time, weights.Area)
	fmt.Print(res.Report(design))

	s, err := mixsoc.ScheduleFor(design, res.Best.Partition, *width)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nschedule: %d placements, %.1f%% TAM utilization\n",
		len(s.Placements), 100*s.Utilization())
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(s.CSV()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("schedule written to %s\n", *csvPath)
	}
	if *gantt {
		fmt.Println()
		fmt.Print(s.Gantt(96))
	} else {
		fmt.Println("last five tests to finish:")
		by := s.ByEnd()
		for i := len(by) - 5; i < len(by); i++ {
			if i < 0 {
				continue
			}
			p := by[i]
			fmt.Printf("  %-14s width %2d  [%9d .. %9d)\n", p.Job.ID, p.Width, p.Start, p.End)
		}
	}
}

// parseInts parses a comma-separated integer list.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFloats parses a comma-separated float list.
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// runSweep prints the cost surface over the requested width range and
// weight settings and the overall cheapest point.
func runSweep(design *mixsoc.Design, widths []int, wts []float64, exhaustive bool) {
	weights := make([]mixsoc.Weights, len(wts))
	for i, wt := range wts {
		weights[i] = mixsoc.Weights{Time: wt, Area: 1 - wt}
	}
	points, err := mixsoc.Sweep(design, widths, weights, exhaustive)
	if err != nil {
		log.Fatal(err)
	}
	names := design.AnalogNames()
	fmt.Printf("cost sweep of %s (%s)\n\n", design.Name, method(exhaustive))
	fmt.Printf("%-16s", "weights \\ W")
	for _, w := range widths {
		fmt.Printf(" %9s", fmt.Sprintf("W=%d", w))
	}
	fmt.Println()
	i := 0
	for _, wt := range weights {
		fmt.Printf("wT=%.2f wA=%.2f ", wt.Time, wt.Area)
		for range widths {
			fmt.Printf(" %9.2f", points[i].Result.Best.Cost)
			i++
		}
		fmt.Println()
	}
	best, err := mixsoc.BestSweepPoint(points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheapest point: W=%d wT=%.2f -> cost %.2f via %s\n",
		best.Width, best.Weights.Time, best.Result.Best.Cost, best.Result.Best.Label(names))
}

func method(exhaustive bool) string {
	if exhaustive {
		return "exhaustive"
	}
	return "cost-optimizer"
}

// printJSON runs the plan through the serving layer's own code path and
// encoder, so the bytes on stdout are exactly what a msoc-serve
// POST /v1/plan returns for the same request. Unlike a server, the CLI
// imposes no planning deadline (the response bytes are unaffected — a
// deadline can only abort a plan, never change one).
func printJSON(design *mixsoc.Design, inline bool, width int, wt float64, exhaustive bool) {
	req := service.PlanRequest{Width: width, WT: &wt, Exhaustive: exhaustive}
	if inline {
		data, err := core.MarshalDesign(design)
		if err != nil {
			log.Fatal(err)
		}
		req.Design = data
	}
	srv := service.New(service.Options{RequestTimeout: math.MaxInt64})
	resp, err := srv.Plan(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	if err := service.WriteJSON(os.Stdout, resp); err != nil {
		log.Fatal(err)
	}
}

// printSweepJSON is printJSON for -sweep: the serving layer's own sweep
// path and encoder, so the bytes on stdout are exactly what a
// msoc-serve POST /v1/sweep returns for the same grid — the in-process
// reference the distributed-smoke CI job diffs a coordinator's merged
// response against.
func printSweepJSON(design *mixsoc.Design, inline bool, widths []int, wts []float64, exhaustive bool) {
	req := service.SweepRequest{Widths: widths, WTs: wts, Exhaustive: exhaustive}
	if inline {
		data, err := core.MarshalDesign(design)
		if err != nil {
			log.Fatal(err)
		}
		req.Design = data
	}
	srv := service.New(service.Options{RequestTimeout: math.MaxInt64})
	resp, err := srv.Sweep(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	if err := service.WriteJSON(os.Stdout, resp); err != nil {
		log.Fatal(err)
	}
}
