// Command msoc-plan runs the mixed-signal test planner on a SOC and
// prints the chosen wrapper-sharing configuration, cost breakdown, and
// TAM schedule.
//
// Usage:
//
//	msoc-plan [-soc file.soc | -benchmark name] [-width 32] [-wt 0.5]
//	          [-exhaustive] [-bounded] [-backend rectangle] [-gantt] [-json]
//	          [-sweep [-widths 32,40,48,56,64] [-wts 0.5,0.25,0.75]]
//	          [-server http://host:8093 [-poll 500ms]]
//
// Without -soc or -benchmark the embedded p93791m benchmark is used
// (the paper's experimental SOC). With -soc, the digital SOC is read
// from the file and the paper's five analog cores are attached. With
// -benchmark, a named design from the embedded registry is planned —
// any mixed-signal name from mixsoc.Benchmarks(), e.g. d695m or
// t512505m.
//
// With -backend the TAM packer is chosen explicitly: "occupancy" (the
// paper's occupancy-sweep optimizer, also the default when the flag is
// absent), "rectangle" (the diagonal-ordered rectangle bin-packing
// backend), or "tournament" (every backend packs, the best validated
// makespan wins). Omitting the flag keeps the original pipeline
// byte-for-byte.
//
// With -json the plan is printed as the serving layer's PlanResponse
// JSON — byte-identical to what a msoc-serve POST /v1/plan returns for
// the same (width, wt, exhaustive) request, which is how CI smoke-tests
// the service against the CLI. Combined with -sweep, the output is the
// SweepResponse JSON for the -widths × -wts grid — byte-identical to a
// POST /v1/sweep of the same grid, whether the answering server plans
// in-process or coordinates the sweep across distributed workers (the
// distributed-smoke CI job diffs exactly that).
//
// With -server and -sweep the CLI becomes a durable-job client: the
// grid is submitted to the server's POST /v1/sweeps, the job is polled
// every -poll until it finishes (progress on stderr), and the result
// bytes — identical to a synchronous POST /v1/sweep and to the local
// -json -sweep output — are printed to stdout. The job survives the
// client: interrupt msoc-plan and re-run the same command to reattach
// (identical submissions dedupe onto the existing job), and a server
// started with -job-dir even survives its own crash mid-sweep.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"mixsoc"
	"mixsoc/internal/core"
	"mixsoc/internal/service"
	"mixsoc/internal/tam"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msoc-plan: ")

	socPath := flag.String("soc", "", "digital SOC file (ITC'02-style format); default: embedded p93791")
	benchmark := flag.String("benchmark", "", "named registry benchmark to plan (a mixed-signal name from mixsoc.Benchmarks(), e.g. d695m); default: p93791m")
	width := flag.Int("width", 32, "SOC-level TAM width W")
	wt := flag.Float64("wt", 0.5, "test-time cost weight wT (wA = 1 - wT)")
	exhaustive := flag.Bool("exhaustive", false, "use exhaustive evaluation instead of Cost_Optimizer")
	bounded := flag.Bool("bounded", false, "prune candidates with the admissible cost lower bound (same answer, fewer packings)")
	backend := flag.String("backend", "", "packing backend: occupancy (default), rectangle, or tournament")
	gantt := flag.Bool("gantt", false, "print an ASCII Gantt chart of the schedule")
	csvPath := flag.String("csv", "", "write the schedule as CSV to this file")
	sweep := flag.Bool("sweep", false, "sweep the -widths × -wts grid instead of a single plan")
	widthsFlag := flag.String("widths", "32,40,48,56,64", "comma-separated TAM widths for -sweep")
	wtsFlag := flag.String("wts", "0.5,0.25,0.75", "comma-separated test-time weights wT for -sweep")
	jsonOut := flag.Bool("json", false, "print the plan (or, with -sweep, the sweep) as the serving layer's JSON (byte-identical to msoc-serve)")
	server := flag.String("server", "", "msoc-serve base URL; with -sweep, submit the grid as a durable job (POST /v1/sweeps), poll it, and print the result JSON")
	pollEvery := flag.Duration("poll", 500*time.Millisecond, "job status poll period for -server")
	flag.Parse()

	if *socPath != "" && *benchmark != "" {
		log.Fatal("-soc and -benchmark are mutually exclusive")
	}
	design := mixsoc.P93791M()
	if *socPath != "" {
		f, err := os.Open(*socPath)
		if err != nil {
			log.Fatal(err)
		}
		soc, err := mixsoc.LoadSOC(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		design = &mixsoc.Design{Name: soc.Name + "-m", Digital: soc, Analog: mixsoc.PaperAnalogCores()}
	}
	if *benchmark != "" {
		d, err := mixsoc.LookupBenchmark(*benchmark)
		if err != nil {
			log.Fatal(err)
		}
		if len(d.Analog) == 0 {
			log.Fatalf("benchmark %q is digital-only; use %q", *benchmark, *benchmark+"m")
		}
		design = d
	}

	if *server != "" && !*sweep {
		log.Fatal("-server needs -sweep: only sweeps run as durable jobs")
	}

	if *sweep {
		widths, err := parseInts(*widthsFlag)
		if err != nil {
			log.Fatalf("-widths: %v", err)
		}
		wts, err := parseFloats(*wtsFlag)
		if err != nil {
			log.Fatalf("-wts: %v", err)
		}
		if *server != "" {
			runServerSweep(*server, design, *socPath != "", *benchmark, widths, wts, *exhaustive, *bounded, *backend, *pollEvery)
			return
		}
		if *jsonOut {
			printSweepJSON(design, *socPath != "", *benchmark, widths, wts, *exhaustive, *bounded, *backend)
			return
		}
		runSweep(design, widths, wts, *exhaustive, *bounded, *backend)
		return
	}

	if *jsonOut {
		printJSON(design, *socPath != "", *benchmark, *width, *wt, *exhaustive, *bounded, *backend)
		return
	}

	packer, err := core.PackerFor(*backend)
	if err != nil {
		log.Fatal(err)
	}
	weights := mixsoc.Weights{Time: *wt, Area: 1 - *wt}
	planner := mixsoc.NewPlanner(design, *width, weights)
	planner.Bounded = *bounded
	planner.Packer = packer

	var res *mixsoc.Result
	if *exhaustive {
		res, err = planner.Exhaustive()
	} else {
		res, err = planner.CostOptimizer()
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TAM width %d, weights wT=%.2f wA=%.2f\n\n", *width, weights.Time, weights.Area)
	fmt.Print(res.Report(design))

	s, err := scheduleFor(design, res.Best.Partition, *width, packer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nschedule: %d placements, %.1f%% TAM utilization\n",
		len(s.Placements), 100*s.Utilization())
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(s.CSV()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("schedule written to %s\n", *csvPath)
	}
	if *gantt {
		fmt.Println()
		fmt.Print(s.Gantt(96))
	} else {
		fmt.Println("last five tests to finish:")
		by := s.ByEnd()
		for i := len(by) - 5; i < len(by); i++ {
			if i < 0 {
				continue
			}
			p := by[i]
			fmt.Printf("  %-14s width %2d  [%9d .. %9d)\n", p.Job.ID, p.Width, p.Start, p.End)
		}
	}
}

// scheduleFor packs the winning configuration's schedule: on the
// default path it reuses the shared engine cache (mixsoc.ScheduleFor);
// with an explicit -backend it packs through that backend so the
// printed schedule is the one the chosen packer produces.
func scheduleFor(design *mixsoc.Design, p mixsoc.Partition, width int, packer tam.Packer) (*mixsoc.Schedule, error) {
	if packer == nil {
		return mixsoc.ScheduleFor(design, p, width)
	}
	jobs, err := core.BuildJobs(design, p, width)
	if err != nil {
		return nil, err
	}
	return packer.Pack(jobs, width)
}

// parseInts parses a comma-separated integer list.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFloats parses a comma-separated float list.
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// runSweep prints the cost surface over the requested width range and
// weight settings and the overall cheapest point.
func runSweep(design *mixsoc.Design, widths []int, wts []float64, exhaustive, bounded bool, backend string) {
	weights := make([]mixsoc.Weights, len(wts))
	for i, wt := range wts {
		weights[i] = mixsoc.Weights{Time: wt, Area: 1 - wt}
	}
	points, err := mixsoc.SweepWith(design, widths, weights, mixsoc.SweepOptions{Exhaustive: exhaustive, Bounded: bounded, Backend: backend})
	if err != nil {
		log.Fatal(err)
	}
	names := design.AnalogNames()
	fmt.Printf("cost sweep of %s (%s)\n\n", design.Name, method(exhaustive))
	fmt.Printf("%-16s", "weights \\ W")
	for _, w := range widths {
		fmt.Printf(" %9s", fmt.Sprintf("W=%d", w))
	}
	fmt.Println()
	i := 0
	for _, wt := range weights {
		fmt.Printf("wT=%.2f wA=%.2f ", wt.Time, wt.Area)
		for range widths {
			fmt.Printf(" %9.2f", points[i].Result.Best.Cost)
			i++
		}
		fmt.Println()
	}
	best, err := mixsoc.BestSweepPoint(points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheapest point: W=%d wT=%.2f -> cost %.2f via %s\n",
		best.Width, best.Weights.Time, best.Result.Best.Cost, best.Result.Best.Label(names))
}

func method(exhaustive bool) string {
	if exhaustive {
		return "exhaustive"
	}
	return "cost-optimizer"
}

// printJSON runs the plan through the serving layer's own code path and
// encoder, so the bytes on stdout are exactly what a msoc-serve
// POST /v1/plan returns for the same request. Unlike a server, the CLI
// imposes no planning deadline (the response bytes are unaffected — a
// deadline can only abort a plan, never change one).
func printJSON(design *mixsoc.Design, inline bool, benchmark string, width int, wt float64, exhaustive, bounded bool, backend string) {
	req := service.PlanRequest{Width: width, WT: &wt, Exhaustive: exhaustive, Bounded: bounded, Benchmark: benchmark, Backend: backend}
	if inline {
		data, err := core.MarshalDesign(design)
		if err != nil {
			log.Fatal(err)
		}
		req.Design = data
	}
	srv := service.New(service.Options{RequestTimeout: math.MaxInt64})
	resp, err := srv.Plan(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	if err := service.WriteJSON(os.Stdout, resp); err != nil {
		log.Fatal(err)
	}
}

// runServerSweep is the durable-job client: submit the grid to the
// server's POST /v1/sweeps (identical re-submissions reattach to the
// existing job), poll until the job is terminal, and print the result
// bytes — the same bytes -json -sweep prints locally — to stdout.
func runServerSweep(server string, design *mixsoc.Design, inline bool, benchmark string, widths []int, wts []float64, exhaustive, bounded bool, backend string, pollEvery time.Duration) {
	req := service.SweepRequest{Widths: widths, WTs: wts, Exhaustive: exhaustive, Bounded: bounded, Benchmark: benchmark, Backend: backend}
	if inline {
		data, err := core.MarshalDesign(design)
		if err != nil {
			log.Fatal(err)
		}
		req.Design = data
	}
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(server+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	job := decodeJob(resp)
	log.Printf("job %s: %s (%d/%d shards)", job.ID, job.State, job.ShardsDone, job.ShardsTotal)

	for job.State == service.JobStateRunning {
		time.Sleep(pollEvery)
		statusResp, err := http.Get(server + "/v1/sweeps/" + job.ID)
		if err != nil {
			log.Fatal(err)
		}
		next := decodeJob(statusResp)
		if next.ShardsDone != job.ShardsDone || next.State != job.State {
			log.Printf("job %s: %s (%d/%d shards)", next.ID, next.State, next.ShardsDone, next.ShardsTotal)
		}
		job = next
	}
	if job.State != service.JobStateDone {
		log.Fatalf("job %s %s: %s", job.ID, job.State, job.Error)
	}

	result, err := http.Get(server + "/v1/sweeps/" + job.ID + "/result")
	if err != nil {
		log.Fatal(err)
	}
	defer result.Body.Close()
	if result.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(result.Body)
		log.Fatalf("fetching result: status %d: %s", result.StatusCode, msg)
	}
	if _, err := io.Copy(os.Stdout, result.Body); err != nil {
		log.Fatal(err)
	}
}

// decodeJob reads one job-status response, treating anything but the
// submit/poll success codes (202 created, 200 existing) as fatal.
func decodeJob(resp *http.Response) *service.JobResponse {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		log.Fatalf("job request failed: status %d: %s", resp.StatusCode, body)
	}
	var jr service.JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		log.Fatalf("job response not JSON: %v: %s", err, body)
	}
	return &jr
}

// printSweepJSON is printJSON for -sweep: the serving layer's own sweep
// path and encoder, so the bytes on stdout are exactly what a
// msoc-serve POST /v1/sweep returns for the same grid — the in-process
// reference the distributed-smoke CI job diffs a coordinator's merged
// response against.
func printSweepJSON(design *mixsoc.Design, inline bool, benchmark string, widths []int, wts []float64, exhaustive, bounded bool, backend string) {
	req := service.SweepRequest{Widths: widths, WTs: wts, Exhaustive: exhaustive, Bounded: bounded, Benchmark: benchmark, Backend: backend}
	if inline {
		data, err := core.MarshalDesign(design)
		if err != nil {
			log.Fatal(err)
		}
		req.Design = data
	}
	srv := service.New(service.Options{RequestTimeout: math.MaxInt64})
	resp, err := srv.Sweep(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	if err := service.WriteJSON(os.Stdout, resp); err != nil {
		log.Fatal(err)
	}
}
